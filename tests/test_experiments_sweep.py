"""Tests for the experiment-sweep subsystem (plans, runner, persistence, CLI)."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ExperimentPlan,
    ExperimentRecord,
    ExperimentSpec,
    SweepResult,
    SweepRunner,
    execute_spec,
)
from repro.experiments.cli import main as cli_main
from repro.runner import run_aer_experiment

SMALL_PLAN = ExperimentPlan(
    ns=(24,),
    adversaries=("none", "silent"),
    modes=("sync",),
    seeds=(3,),
)


class TestPlan:
    def test_grid_expansion_order(self):
        plan = ExperimentPlan(
            ns=(24, 32), adversaries=("none", "silent"), modes=("sync", "async"), seeds=(0, 1)
        )
        specs = plan.specs()
        assert len(specs) == len(plan) == 16
        # n-major, then adversary, mode, seed
        assert specs[0] == ExperimentSpec(n=24, adversary="none", mode="sync", seed=0)
        assert specs[1].seed == 1
        assert specs[2].mode == "async"
        assert specs[8].n == 32

    def test_lists_are_normalised_to_tuples(self):
        plan = ExperimentPlan(ns=[24], adversaries=["none"], modes=["sync"], seeds=[0])
        assert plan.ns == (24,)

    def test_extra_specs_are_appended(self):
        extra = ExperimentSpec(n=48, adversary="cornering", mode="async", seed=9)
        plan = ExperimentPlan(ns=(24,), extra_specs=(extra,))
        assert plan.specs()[-1] == extra
        assert len(plan) == 2

    def test_spec_key_and_roundtrip(self):
        spec = ExperimentSpec(n=64, adversary="silent", mode="async", seed=4)
        assert spec.key == "async:silent:n64:s4"
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        rushing = spec.with_(mode="sync", rushing=True)
        assert rushing.key == "sync-rushing:silent:n64:s4"

    def test_plan_roundtrip(self):
        plan = ExperimentPlan(
            ns=(24,), adversaries=("none",), seeds=(0, 1),
            extra_specs=(ExperimentSpec(n=32),),
        )
        assert ExperimentPlan.from_dict(plan.to_dict()) == plan


class TestExecuteSpec:
    def test_record_matches_direct_run(self):
        spec = ExperimentSpec(n=24, adversary="none", mode="sync", seed=3)
        record = execute_spec(spec)
        result = run_aer_experiment(n=24, adversary_name="none", mode="sync", seed=3)
        assert record.agreement == result.agreement_reached
        assert record.rounds == result.rounds
        assert record.total_messages == result.metrics_all.total_messages
        assert record.total_bits == result.metrics_all.total_bits
        assert record.decided_count == len(result.decisions)
        assert record.correct_count == len(result.correct_ids)
        assert record.decided_fraction == pytest.approx(1.0)
        assert record.seconds > 0

    def test_record_roundtrip_and_row(self):
        record = execute_spec(ExperimentSpec(n=24, seed=3))
        assert ExperimentRecord.from_dict(record.to_dict()) == record
        row = record.row()
        assert row["n"] == 24 and row["agreement"] == 1


class TestSweepRunner:
    def test_serial_and_parallel_agree(self):
        serial = SweepRunner(SMALL_PLAN, jobs=1).run()
        parallel = SweepRunner(SMALL_PLAN, jobs=2).run()
        assert serial.jobs == 1 and parallel.jobs == 2
        assert len(serial.records) == len(parallel.records) == 2
        for a, b in zip(serial.records, parallel.records):
            assert a.spec == b.spec  # plan order preserved under the pool
            assert a.total_bits == b.total_bits
            assert a.rounds == b.rounds
            assert a.agreement == b.agreement

    def test_filter_and_rows(self):
        sweep = SweepRunner(SMALL_PLAN, jobs=1).run()
        silent = sweep.filter(adversary="silent")
        assert [r.spec.adversary for r in silent] == ["silent"]
        assert len(sweep.rows()) == 2

    def test_save_and_load_roundtrip(self, tmp_path):
        sweep = SweepRunner(SMALL_PLAN, jobs=1).run()
        path = tmp_path / "sweep.json"
        sweep.save(str(path))
        loaded = SweepResult.load(str(path))
        assert loaded.plan == sweep.plan
        assert loaded.records == sweep.records
        assert loaded.jobs == sweep.jobs

    def test_unordered_dispatch_reassembles_plan_order(self):
        """Mixed-duration specs come back in plan order despite unordered dispatch."""
        from repro.experiments import ExperimentPlan

        plan = ExperimentPlan(ns=(40, 24, 32), modes=("sync",), seeds=(3,))
        parallel = SweepRunner(plan, jobs=2).run()
        serial = SweepRunner(plan, jobs=1).run()
        assert [r.spec.n for r in parallel.records] == [40, 24, 32]
        for a, b in zip(serial.records, parallel.records):
            assert a.spec == b.spec
            assert a.total_bits == b.total_bits


class TestWorkerPool:
    def test_pool_is_reused_across_plans(self):
        from repro.experiments import ExperimentPlan
        from repro.experiments.sweep import WorkerPool

        plan_a = ExperimentPlan(ns=(24,), modes=("sync",), seeds=(3, 4))
        plan_b = ExperimentPlan(ns=(24,), modes=("sync",), seeds=(5, 6))
        with WorkerPool() as pool:
            first = SweepRunner(plan_a, jobs=2).run(pool=pool)
            inner = pool._pool
            assert pool.size == 2
            second = SweepRunner(plan_b, jobs=2).run(pool=pool)
            assert pool._pool is inner  # same warm workers, no respawn
        assert pool.size == 0  # context exit tears the pool down
        assert [r.spec.seed for r in first.records] == [3, 4]
        assert [r.spec.seed for r in second.records] == [5, 6]

    def test_pool_grows_for_larger_plans(self):
        from repro.experiments import ExperimentPlan
        from repro.experiments.sweep import WorkerPool

        with WorkerPool() as pool:
            SweepRunner(
                ExperimentPlan(ns=(24,), modes=("sync",), seeds=(3,)), jobs=2
            ).run(pool=pool)
            assert pool.size == 2
            SweepRunner(
                ExperimentPlan(ns=(24,), modes=("sync",), seeds=(3, 4, 5)), jobs=3
            ).run(pool=pool)
            assert pool.size == 3

    def test_pooled_results_match_serial(self):
        from repro.experiments.sweep import WorkerPool

        serial = SweepRunner(SMALL_PLAN, jobs=1).run()
        with WorkerPool() as pool:
            pooled = SweepRunner(SMALL_PLAN, jobs=2).run(pool=pool)
        for a, b in zip(serial.records, pooled.records):
            assert a.spec == b.spec
            assert a.total_bits == b.total_bits
            assert a.rounds == b.rounds


class TestCLI:
    def test_run_command(self, capsys):
        assert cli_main(["run", "--n", "24", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "experiment sync:none:n24:s3" in out

    def test_sweep_command_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "out.json"
        code = cli_main([
            "sweep", "--ns", "24", "--adversaries", "none", "--modes", "sync",
            "--seeds", "3", "--jobs", "1", "--out", str(out_path),
        ])
        assert code == 0
        data = json.loads(out_path.read_text(encoding="utf-8"))
        assert len(data["records"]) == 1
        assert data["records"][0]["spec"]["n"] == 24
        assert "sweep of 1 experiments" in capsys.readouterr().out


class TestWorkerCrashDetection:
    """A pool worker dying mid-spec must fail the sweep, not hang it."""

    def test_killed_worker_raises_instead_of_hanging(self):
        import multiprocessing

        from repro.experiments.sweep import WorkerCrashedError, WorkerPool
        from repro.protocols import PROTOCOLS, ProtocolAdapter, RunResult, register_protocol

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork so pool workers inherit the test protocol")

        @register_protocol
        class SuicideProtocol(ProtocolAdapter):
            name = "suicide_test"
            params = {}

            def run(self, spec):
                if spec.seed == 4:  # one spec kills its worker uncleanly
                    import os
                    import signal

                    os.kill(os.getpid(), signal.SIGKILL)
                return RunResult(
                    protocol=self.name, n=spec.n, agreement=True,
                    decided_count=spec.n, correct_count=spec.n,
                    rounds=1, span=None, max_decision_time=None,
                    total_messages=0, total_bits=0, amortized_bits=0.0,
                    max_node_bits=0, median_node_bits=0.0, load_imbalance=1.0,
                )

        plan = ExperimentPlan(ns=(8,), protocols=("suicide_test",), seeds=(3, 4, 5, 6))
        try:
            with WorkerPool(processes=2) as pool:
                with pytest.raises(WorkerCrashedError) as excinfo:
                    SweepRunner(plan, jobs=2).run(pool=pool)
                assert pool.size == 0  # the poisoned pool was terminated
            message = str(excinfo.value)
            assert "died with exit code" in message
            assert "suicide_test" in message  # names an unfinished spec key
        finally:
            PROTOCOLS.unregister("suicide_test")
