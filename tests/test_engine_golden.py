"""Golden-seed engine equivalence tests.

``tests/golden/engine_golden.json`` pins the externally visible outcome of
the simulation engine — per-node decisions, round/span timing, per-node and
total bit metrics — for a matrix of (mode, adversary, n, seed) cases, as
produced by the pre-columnar engine (the original entries by the pre-kernel
seed engine).  These tests assert the current engine reproduces every pinned
value *exactly*, which is what makes kernel and sampler refactors provably
behavior-preserving.  The matrix deliberately covers both scheduler paths of
the columnar engine: the adversary-free fast paths (grouped sync inboxes,
the async calendar queue) and the per-message adversary paths, including the
rushing observation list and the ``cornering_nodelay`` delay adversary.

If a PR intentionally changes engine behaviour, regenerate the fixture with
``scripts/gen_golden.py`` and call the change out explicitly.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import fields

import pytest

from repro.experiments.plan import ExperimentSpec
from repro.runner import run_aer_experiment

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "engine_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

#: legacy positional-key cases vs PR-8 fault cases (these carry a "spec" dict)
LEGACY_CASES = sorted(k for k, v in GOLDEN.items() if "spec" not in v)
FAULT_CASES = sorted(k for k, v in GOLDEN.items() if "spec" in v)


def _parse_case(key: str):
    mode_part, adversary, n_part, seed_part = key.split(":")
    rushing = mode_part.endswith("-rushing")
    mode = mode_part.replace("-rushing", "")
    return mode, rushing, adversary, int(n_part[1:]), int(seed_part[1:])


@pytest.mark.parametrize("case_key", LEGACY_CASES, ids=LEGACY_CASES)
def test_engine_reproduces_golden_case(case_key):
    mode, rushing, adversary, n, seed = _parse_case(case_key)
    expected = GOLDEN[case_key]

    result = run_aer_experiment(
        n, adversary_name=adversary, mode=mode, rushing=rushing, seed=seed
    )

    assert {str(i): v for i, v in result.decisions.items()} == expected["decisions"]
    assert result.rounds == expected["rounds"]
    assert result.span == expected["span"]
    assert result.metrics_all.total_messages == expected["total_messages"]
    assert result.metrics_all.total_bits == expected["total_bits"]
    assert result.metrics.max_node_bits == expected["max_node_bits"]
    assert {
        str(i): b for i, b in result.metrics.per_node_bits.items()
    } == expected["per_node_bits"]
    assert {
        str(i): t for i, t in result.metrics.decision_times.items()
    } == expected["decision_times"]


@pytest.mark.parametrize("case_key", FAULT_CASES, ids=FAULT_CASES)
def test_engine_reproduces_golden_fault_case(case_key):
    """The fault-injection cases (churn, loss, partition-heal) are pinned too.

    Each entry stores its full spec dict, so the case round-trips through
    ``ExperimentSpec.from_dict`` — exercising the canonical ``faults``
    spelling — before running on the message kernel.
    """
    expected = GOLDEN[case_key]
    spec = ExperimentSpec.from_dict(expected["spec"])
    result = spec.run()
    raw = result.raw

    assert spec.to_dict() == expected["spec"]
    assert {str(i): v for i, v in raw.decisions.items()} == expected["decisions"]
    assert result.rounds == expected["rounds"]
    assert result.span == expected["span"]
    assert result.decided_count == expected["decided_count"]
    assert result.agreement == expected["agreement"]
    assert result.total_messages == expected["total_messages"]
    assert result.total_bits == expected["total_bits"]
    assert result.max_node_bits == expected["max_node_bits"]
    assert {
        str(i): t for i, t in raw.metrics.decision_times.items()
    } == expected["decision_times"]
    fault_extras = {
        k: v for k, v in result.extras.items() if k.startswith("fault_")
    }
    assert fault_extras == expected["extras"]


@pytest.mark.parametrize("mode", ["sync", "async"])
def test_faults_off_equals_plain(mode):
    """An empty fault schedule must be byte-identical to no schedule at all.

    Mirrors the trace-off equality test: every no-op spelling of ``faults``
    collapses to ``"{}"`` at spec construction, no injector is built, and
    every normalized field of the result agrees exactly with the plain run.
    """
    base = ExperimentSpec(n=128, adversary="none", mode=mode, seed=2)
    plain = base.run()
    faulted_off = base.with_(
        faults={"loss_rate": 0.0, "churn_rate": 0.0, "slow_factor": 1.0}
    ).run()

    assert base.with_(faults={}) == base
    for field in fields(type(plain)):
        if field.name in ("trace", "raw"):
            continue
        assert getattr(faulted_off, field.name) == getattr(plain, field.name), field.name


def test_trace_summary_equals_off_async_n256():
    """``trace="summary"`` must not perturb the async fast path at bench scale.

    The BENCH_kernel async case (n=256, no adversary) runs once with tracing
    off and once with the summary collector attached; every normalized
    metric must agree exactly — probes observe the grouped dispatch records,
    they never change scheduling, RNG consumption or accounting.
    """
    base = ExperimentSpec(n=256, adversary="none", mode="async", seed=0)
    off = base.run()
    summary = base.with_(trace="summary").run()

    assert off.trace is None
    assert summary.trace is not None and summary.trace["mode"] == "summary"
    for field in fields(type(off)):
        if field.name in ("trace", "raw"):
            continue
        assert getattr(summary, field.name) == getattr(off, field.name), field.name
    # the trace block itself must agree with the kernel's own accounting
    dispatched = sum(
        kinds["messages"]
        for kinds in summary.trace["message_kinds"].values()
    )
    assert dispatched == off.total_messages
