"""Golden-seed engine equivalence tests.

``tests/golden/engine_golden.json`` pins the externally visible outcome of
the simulation engine — per-node decisions, round/span timing, per-node and
total bit metrics — for a matrix of (mode, adversary, n, seed) cases, as
produced by the pre-kernel seed engine.  These tests assert the current
engine reproduces every pinned value *exactly*, which is what makes kernel
and sampler refactors provably behavior-preserving.

If a PR intentionally changes engine behaviour, regenerate the fixture with
``scripts/gen_golden.py`` and call the change out explicitly.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.runner import run_aer_experiment

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "engine_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _parse_case(key: str):
    mode_part, adversary, n_part, seed_part = key.split(":")
    rushing = mode_part.endswith("-rushing")
    mode = mode_part.replace("-rushing", "")
    return mode, rushing, adversary, int(n_part[1:]), int(seed_part[1:])


@pytest.mark.parametrize("case_key", sorted(GOLDEN), ids=sorted(GOLDEN))
def test_engine_reproduces_golden_case(case_key):
    mode, rushing, adversary, n, seed = _parse_case(case_key)
    expected = GOLDEN[case_key]

    result = run_aer_experiment(
        n, adversary_name=adversary, mode=mode, rushing=rushing, seed=seed
    )

    assert {str(i): v for i, v in result.decisions.items()} == expected["decisions"]
    assert result.rounds == expected["rounds"]
    assert result.span == expected["span"]
    assert result.metrics_all.total_messages == expected["total_messages"]
    assert result.metrics_all.total_bits == expected["total_bits"]
    assert result.metrics.max_node_bits == expected["max_node_bits"]
    assert {
        str(i): b for i, b in result.metrics.per_node_bits.items()
    } == expected["per_node_bits"]
    assert {
        str(i): t for i, t in result.metrics.decision_times.items()
    } == expected["decision_times"]
