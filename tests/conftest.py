"""Shared fixtures for the test-suite.

Everything is deterministic: fixtures take fixed seeds so failures are
reproducible, and the "small" system sizes keep the full suite fast while
still exercising real quorum logic (quorums of 7+ members, 16% Byzantine).
"""

from __future__ import annotations

import pytest

from repro.core.config import AERConfig
from repro.core.scenario import make_scenario
from repro.runner import run_aer

SMALL_N = 32
MEDIUM_N = 64


@pytest.fixture(scope="session")
def small_config() -> AERConfig:
    """AER configuration for a 32-node system."""
    return AERConfig.for_system(SMALL_N, sampler_seed=11)


@pytest.fixture(scope="session")
def small_scenario(small_config):
    """A comfortable almost-everywhere scenario on 32 nodes (seed 11)."""
    return make_scenario(
        SMALL_N,
        config=small_config,
        t=SMALL_N // 6,
        knowledge_fraction=0.78,
        seed=11,
    )


@pytest.fixture(scope="session")
def small_samplers(small_config):
    """Shared sampler suite for the 32-node configuration."""
    return small_config.build_samplers()


@pytest.fixture(scope="session")
def medium_config() -> AERConfig:
    """AER configuration for a 64-node system."""
    return AERConfig.for_system(MEDIUM_N, sampler_seed=7)


@pytest.fixture(scope="session")
def medium_scenario(medium_config):
    """A comfortable almost-everywhere scenario on 64 nodes (seed 7)."""
    return make_scenario(
        MEDIUM_N,
        config=medium_config,
        t=MEDIUM_N // 6,
        knowledge_fraction=0.78,
        seed=7,
    )


@pytest.fixture(scope="session")
def small_sync_result(small_scenario, small_config):
    """One failure-free synchronous AER run on the small scenario (reused by many tests)."""
    return run_aer(small_scenario, config=small_config, adversary_name="none", seed=11)
