"""Distributed sweep executor: lease board, TCP protocol, end-to-end runs.

The correctness contract of :mod:`repro.dist`, each half pinned here:

* **Lease state machine** — claim/heartbeat/expiry/re-issue/duplicate-
  completion races, driven deterministically through an injectable clock
  (no sleeps) on the pure :class:`~repro.dist.board.ShardBoard` and then
  again over real TCP with two :class:`~repro.dist.protocol.
  CoordinatorClient` connections against one coordinator.
* **Exactly-once persistence** — at-least-once execution (an expired
  lease's shard is re-issued) never produces duplicate store rows or
  duplicate records in the reassembled result.
* **Byte-identical reassembly** — ``run_distributed_sweep`` (in-process
  workers and real ``dist-worker`` subprocesses, warm store or cold) and
  ``sweep --distributed --canonical`` serialise byte-for-byte identically
  to a serial run of the same plan.
* **Fingerprint handshake** — a worker running different code is rejected
  by name before it can claim anything.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.dist import (
    CoordinatorClient,
    DistCoordinator,
    ProtocolError,
    ShardBoard,
    WorkerRejectedError,
    active_coordinators,
    coordinator_status,
    parse_address,
    run_distributed_sweep,
    run_worker,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.plan import ExperimentPlan
from repro.experiments.sweep import RUN_COUNTER, SweepRunner, execute_spec
from repro.store import ResultStore, spec_key


@pytest.fixture(autouse=True)
def _pinned_fingerprint(monkeypatch):
    """Pin the code fingerprint so handshakes never depend on git state."""
    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "dist-test-fp")


PLAN = ExperimentPlan(ns=(24,), adversaries=("none", "silent"), seeds=(3,))


class FakeClock:
    """A settable monotonic clock for deterministic lease races."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _board(clock=None, lease_timeout=10.0, specs=None):
    return ShardBoard(
        specs if specs is not None else PLAN.specs(),
        lease_timeout=lease_timeout,
        clock=clock,
    )


# ----------------------------------------------------------------------
# the lease state machine (no sockets, no sleeps)
# ----------------------------------------------------------------------
class TestShardBoard:
    def test_claims_issue_in_plan_order(self):
        board = _board(FakeClock())
        first = board.claim("w1")
        second = board.claim("w2")
        assert (first.kind, second.kind) == ("lease", "lease")
        assert (first.shard.index, second.shard.index) == (0, 1)
        assert first.shard.lease_id != second.shard.lease_id

    def test_all_leased_means_wait_with_bounded_retry(self):
        clock = FakeClock()
        board = _board(clock, lease_timeout=10.0)
        board.claim("w1")
        board.claim("w1")
        result = board.claim("w2")
        assert result.kind == "wait"
        assert 0.05 <= result.retry_after <= 1.0

    def test_heartbeat_extends_the_deadline(self):
        clock = FakeClock()
        board = _board(clock, lease_timeout=10.0)
        lease = board.claim("w1").shard.lease_id
        clock.advance(8.0)
        assert board.heartbeat(lease)  # extended to now+10
        clock.advance(8.0)  # 16s after claim: dead without the beat
        assert board.claim("w2").shard.index == 1  # shard 0 still live

    def test_expired_lease_is_reissued_and_counted(self):
        clock = FakeClock()
        board = _board(clock, lease_timeout=10.0)
        first = board.claim("w1").shard
        old_lease = first.lease_id
        clock.advance(11.0)
        reissued = board.claim("w2").shard
        assert reissued.index == 0
        assert reissued.worker == "w2"
        assert reissued.attempts == 2
        assert board.counters.expired_leases == 1
        assert not board.heartbeat(old_lease)  # the old lease is gone

    def test_duplicate_completion_is_discarded_first_wins(self):
        clock = FakeClock()
        board = _board(clock, lease_timeout=10.0)
        shard = board.claim("w1").shard
        record = execute_spec(shard.spec)
        clock.advance(11.0)
        board.claim("w2")  # re-issue after expiry
        # the original (expired) attempt finishes first: still accepted
        assert board.complete(0, record, worker="w1")
        assert not board.complete(0, record, worker="w2")
        assert board.counters.duplicate_completions == 1
        assert board.counters.completed_by == {"w1": 1}

    def test_served_shards_are_never_issued(self):
        board = _board(FakeClock())
        record = execute_spec(PLAN.specs()[0])
        board.serve(0, record, "store")
        assert board.claim("w1").shard.index == 1
        counts = board.counts()
        assert counts["served_from_store"] == 1 and counts["done"] == 1

    def test_drained_and_plan_order_records(self):
        board = _board(FakeClock())
        for _ in range(2):
            shard = board.claim("w1").shard
            board.complete(shard.index, execute_spec(shard.spec), worker="w1")
        assert board.claim("w1").kind == "drained"
        assert board.finished and board.wait(timeout=0.1)
        records, served_store, served_resume = board.records()
        assert [r.spec for r in records] == list(PLAN.specs())
        assert (served_store, served_resume) == (0, 0)

    def test_records_refuses_a_partial_board(self):
        board = _board(FakeClock())
        with pytest.raises(RuntimeError, match="not finished"):
            board.records()

    def test_empty_plan_is_born_finished(self):
        board = _board(FakeClock(), specs=[])
        assert board.finished
        assert board.claim("w1").kind == "drained"


# ----------------------------------------------------------------------
# the TCP protocol against a live coordinator
# ----------------------------------------------------------------------
class TestCoordinatorTCP:
    def test_lease_race_over_tcp_reassembles_identically(self):
        """Two workers race one shard after an expiry — the duplicate is
        discarded and the reassembled result matches a serial run."""
        clock = FakeClock()
        serial = SweepRunner(PLAN, jobs=1).run()
        with DistCoordinator(PLAN, lease_timeout=10.0, clock=clock) as coord:
            address = coord.address
            with CoordinatorClient(address, worker="w1") as w1, CoordinatorClient(
                address, worker="w2"
            ) as w2:
                w1.hello()
                w2.hello()
                lease0 = w1.claim()
                lease1 = w2.claim()
                assert (lease0["index"], lease1["index"]) == (0, 1)
                record1 = execute_spec(PLAN.specs()[1])
                assert w2.complete(lease1["lease"], 1, record1.to_dict())
                clock.advance(11.0)  # w1's lease lapses unheartbeated
                assert not w1.heartbeat(lease0["lease"])
                retry = w2.claim()
                assert retry["index"] == 0 and retry["attempt"] == 2
                record0 = execute_spec(PLAN.specs()[0])
                # slow original attempt lands first, retry is the duplicate
                assert w1.complete(lease0["lease"], 0, record0.to_dict())
                assert not w2.complete(retry["lease"], 0, record0.to_dict())
            status = coord.status()
            assert status["expired_leases"] == 1
            assert status["duplicate_completions"] == 1
            result = coord.result(timeout=5.0)
        assert json.dumps(result.canonical_dict()) == json.dumps(
            serial.canonical_dict()
        )

    def test_stale_code_worker_is_rejected_by_name(self):
        with DistCoordinator(PLAN) as coord:
            client = CoordinatorClient(
                coord.address, worker="stale-w", fingerprint="other-fp"
            )
            with client:
                with pytest.raises(WorkerRejectedError) as excinfo:
                    client.hello()
            message = str(excinfo.value)
            assert "stale-w" in message
            assert "other-fp" in message and "dist-test-fp" in message
            # run_worker surfaces the same rejection
            with pytest.raises(WorkerRejectedError):
                run_worker(coord.address, worker_id="w", fingerprint="other-fp")

    def test_claim_before_hello_is_a_protocol_error(self):
        with DistCoordinator(PLAN) as coord:
            with CoordinatorClient(coord.address, worker="rude") as client:
                with pytest.raises(ProtocolError, match="handshake required"):
                    client.claim()

    def test_status_needs_no_handshake_and_registry_lists_it(self):
        with DistCoordinator(PLAN) as coord:
            host, port = coord.address
            status = coordinator_status(f"{host}:{port}")
            assert status["total"] == 2 and not status["finished"]
            assert any(
                c["address"] == f"{host}:{port}" for c in active_coordinators()
            )
        assert all(
            c["address"] != f"{host}:{port}" for c in active_coordinators()
        )

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7341") == ("127.0.0.1", 7341)
        assert parse_address(("h", 1)) == ("h", 1)
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("7341")


# ----------------------------------------------------------------------
# end-to-end distributed sweeps
# ----------------------------------------------------------------------
class TestDistributedSweep:
    def test_in_process_workers_match_serial_byte_for_byte(self):
        serial = SweepRunner(PLAN, jobs=1).run()
        result = run_distributed_sweep(PLAN, workers=2, in_process=True)
        assert json.dumps(result.canonical_dict()) == json.dumps(
            serial.canonical_dict()
        )
        assert result.jobs == 2

    def test_store_flushes_exactly_once_and_warm_plan_spawns_nothing(
        self, tmp_path
    ):
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            first = run_distributed_sweep(
                PLAN, workers=2, store=store, in_process=True
            )
            assert first.served_from_store == 0
            assert store.stats()["records"] == len(PLAN)  # zero duplicates
            executed_before = RUN_COUNTER["executed"]
            warm = run_distributed_sweep(
                PLAN, workers=2, store=store, in_process=True
            )
            # fully served before the server listens: nothing executed in
            # this process, no worker threads started, jobs reads 1
            assert RUN_COUNTER["executed"] == executed_before
            assert warm.served_from_store == len(PLAN)
            assert warm.jobs == 1
            assert [r.spec for r in warm.records] == [
                r.spec for r in first.records
            ]

    def test_resume_seeds_serve_and_repersist(self, tmp_path):
        complete = SweepRunner(PLAN, jobs=1).run()
        seeds = {spec_key(r.spec): r for r in complete.records[:1]}
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            result = run_distributed_sweep(
                PLAN, workers=2, store=store, seed_records=seeds, in_process=True
            )
            assert result.served_from_store == 1  # combined served count
            assert result.served_from_resume == 1
            assert store.stats()["records"] == len(PLAN)  # seed re-persisted

    def test_worker_subprocesses_match_serial(self, tmp_path):
        serial = SweepRunner(PLAN, jobs=1).run()
        with ResultStore(str(tmp_path / "s.sqlite")) as store:
            result = run_distributed_sweep(
                PLAN, workers=2, store=store, lease_timeout=15.0
            )
            assert store.stats()["records"] == len(PLAN)
        assert json.dumps(result.canonical_dict()) == json.dumps(
            serial.canonical_dict()
        )

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            run_distributed_sweep(PLAN, workers=0)


# ----------------------------------------------------------------------
# CLI: sweep --distributed / --canonical, dist-worker
# ----------------------------------------------------------------------
class TestDistCLI:
    SWEEP = ["sweep", "--ns", "24", "--adversaries", "none,silent",
             "--seeds", "3", "--no-store", "--jobs", "1"]

    def test_distributed_sweep_is_byte_identical_to_serial(self, tmp_path, capsys):
        serial_out = str(tmp_path / "serial.json")
        dist_out = str(tmp_path / "dist.json")
        assert cli_main([*self.SWEEP, "--canonical", "--out", serial_out]) == 0
        assert (
            cli_main(
                [*self.SWEEP, "--canonical", "--out", dist_out,
                 "--distributed", "2", "--lease-timeout", "15"]
            )
            == 0
        )
        assert "distributed workers" in capsys.readouterr().out
        with open(serial_out, "rb") as a, open(dist_out, "rb") as b:
            assert a.read() == b.read()

    def test_canonical_zeroes_volatile_fields(self, tmp_path):
        out = tmp_path / "sweep.json"
        assert cli_main([*self.SWEEP, "--canonical", "--out", str(out)]) == 0
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data["total_seconds"] == 0.0 and data["jobs"] == 0
        assert all(r["seconds"] == 0.0 for r in data["records"])

    def test_dist_worker_command_drains_a_coordinator(self, capsys):
        coordinator = DistCoordinator(PLAN, lease_timeout=15.0)
        with coordinator:
            host, port = coordinator.address
            code = cli_main(
                ["dist-worker", f"{host}:{port}", "--id", "cli-w", "--poll", "0.1"]
            )
            assert code == 0
            assert "executed 2 shard(s)" in capsys.readouterr().out
            assert coordinator.board.finished
            assert coordinator.status()["completed_by"] == {"cli-w": 2}

    def test_dist_worker_command_reports_rejection(self, monkeypatch, capsys):
        with DistCoordinator(PLAN) as coordinator:
            host, port = coordinator.address
            monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "stale-fp")
            assert cli_main(["dist-worker", f"{host}:{port}"]) == 2
            assert "fingerprint mismatch" in capsys.readouterr().err

    def test_dist_worker_command_without_a_coordinator(self, capsys):
        assert cli_main(["dist-worker", "127.0.0.1:9", "--poll", "0.1"]) == 2
        assert "cannot work against" in capsys.readouterr().err


# ----------------------------------------------------------------------
# concurrent in-process workers racing one coordinator
# ----------------------------------------------------------------------
def test_two_worker_threads_split_the_plan():
    plan = ExperimentPlan(ns=(24,), adversaries=("none", "silent"), seeds=(3, 4))
    with DistCoordinator(plan, lease_timeout=15.0) as coordinator:
        host, port = coordinator.address
        counts = {}

        def work(name):
            counts[name] = run_worker(
                (host, port), worker_id=name, poll_interval=0.05
            )

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert coordinator.wait(timeout=5.0)
        assert sum(counts.values()) == len(plan)  # nothing executed twice
        result = coordinator.result(timeout=5.0)
    assert [r.spec for r in result.records] == list(plan.specs())


# ----------------------------------------------------------------------
# bench cases and the service endpoint
# ----------------------------------------------------------------------
def test_bench_distributed_cases_schema():
    from repro.experiments.bench import build_report, run_distributed_cases

    tiny = ExperimentPlan(ns=(24,), seeds=(3, 4))
    cases = run_distributed_cases(repeats=1, plan=tiny, in_process=True)
    assert [c["key"] for c in cases] == [
        "pooled_n2", "distributed_n2", "distributed_n4",
    ]
    for case in cases:
        assert case["agreement_reached"] and case["seconds"] > 0
        assert case["total_messages"] > 0
    report = build_report(cases=cases, repeats=1, commit="test")
    assert report["distributed_overhead_n2"] == pytest.approx(
        cases[1]["seconds"] / cases[0]["seconds"], abs=0.01
    )


def test_service_lists_live_coordinators():
    from repro.service import fastapi_available

    if not fastapi_available():
        pytest.skip("needs the [service] extra")
    from fastapi.testclient import TestClient

    from repro.service import create_app
    from repro.service.jobs import JobManager

    app = create_app(manager=JobManager(store=None, jobs=1))
    with TestClient(app) as client:
        assert client.get("/dist/coordinators").json() == []
        with DistCoordinator(PLAN) as coordinator:
            host, port = coordinator.address
            listed = client.get("/dist/coordinators").json()
            assert [c["address"] for c in listed] == [f"{host}:{port}"]
            assert listed[0]["total"] == len(PLAN)
        assert client.get("/dist/coordinators").json() == []
