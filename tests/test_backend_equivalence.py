"""The vectorized engine backend: golden equality, spec plumbing, statistics.

Three concerns share this file because they gate the same axis:

* **Golden equality** — the whole-round numpy engine must reproduce the
  per-message kernel *bit for bit* on the grids where it replays the kernel's
  RNG draw order (the CI form of the exact acceptance gate; the large-n
  statistical form runs as ``python -m repro equivalence --mode statistical``).
* **Spec plumbing** — the ``backend`` knob must round-trip through JSON,
  key-suffix correctly, and reject every unsupported combination loudly.
* **CI-overlap statistics** — :meth:`MeanEstimate.overlaps` and
  :func:`distributions_equivalent` are what "statistically equivalent" means
  at sizes where draw orders diverge.
"""

from __future__ import annotations

import pytest

from repro.analysis.equivalence import check_exact
from repro.analysis.statistics import (
    MeanEstimate,
    distributions_equivalent,
    mean_ci,
)
from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.protocols import get_protocol
from repro.runner import run_aer_experiment


class TestGoldenEquality:
    """Message kernel vs vectorized engine, bit for bit."""

    def test_aer_exact_over_adversary_grid(self):
        report = check_exact(
            ns=(48,),
            adversaries=("none", "silent", "push_flood", "quorum_flood"),
            seeds=(0,),
        )
        assert report.cases == 4
        assert report.mismatches == []

    def test_aer_exact_random_wrong_candidates(self):
        report = check_exact(
            ns=(64,), adversaries=("none",), seeds=(1,),
            wrong_candidate_mode="random",
        )
        assert report.mismatches == []

    def test_sample_majority_exact(self):
        spec = {"n": 96, "protocol": "sample_majority", "adversary": "silent", "seed": 0}
        message = ExperimentSpec(**spec).run()
        vectorized = ExperimentSpec(**spec, backend="vectorized").run()
        assert vectorized.raw.decisions == message.raw.decisions
        assert vectorized.decided_count == message.decided_count
        assert vectorized.agreement == message.agreement
        assert vectorized.rounds == message.rounds
        assert vectorized.total_messages == message.total_messages
        assert vectorized.total_bits == message.total_bits
        assert vectorized.max_node_bits == message.max_node_bits

    def test_vectorized_runner_rejects_async_and_rushing(self):
        from repro.core.config import AERConfig
        from repro.core.scenario import make_scenario
        from repro.runner import run_aer

        n = 48
        config = AERConfig.for_system(n)
        scenario = make_scenario(n, config=config, t=max(1, n // 6), seed=0)
        with pytest.raises(ValueError, match="synchronous only"):
            run_aer(scenario, config=config, mode="async", backend="vectorized")
        with pytest.raises(ValueError, match="rushing"):
            run_aer(scenario, config=config, rushing=True, backend="vectorized")

    def test_runner_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_aer_experiment(32, backend="warp")


class TestBackendSpecPlumbing:
    def test_default_backend_is_message(self):
        assert ExperimentSpec(n=32).backend == "message"

    def test_key_suffix(self):
        assert ExperimentSpec(n=32).key == "sync:none:n32:s0"
        assert (
            ExperimentSpec(n=32, backend="vectorized").key == "sync:none:n32:s0:vec"
        )

    def test_spec_round_trips_through_json(self):
        spec = ExperimentSpec(n=64, backend="vectorized", wrong_candidate_mode="common_wrong")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_plan_threads_backend_into_every_spec(self):
        plan = ExperimentPlan(ns=(32, 64), seeds=(0, 1), backend="vectorized")
        specs = plan.specs()
        assert specs and all(s.backend == "vectorized" for s in specs)
        assert ExperimentPlan.from_dict(plan.to_dict()).specs() == specs

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentSpec(n=32, backend="gpu").validate()

    def test_vectorized_rejects_async_rushing_trace(self):
        with pytest.raises(ValueError, match="synchronous only"):
            ExperimentSpec(n=32, mode="async", backend="vectorized").validate()
        with pytest.raises(ValueError, match="rushing"):
            ExperimentSpec(n=32, rushing=True, backend="vectorized").validate()
        with pytest.raises(ValueError, match="trac"):
            ExperimentSpec(n=32, trace="summary", backend="vectorized").validate()

    def test_message_only_protocol_rejects_vectorized(self):
        spec = ExperimentSpec(n=32, protocol="full_ba", backend="vectorized")
        with pytest.raises(ValueError, match="backend"):
            spec.validate()

    def test_vectorized_rejects_unsupported_adversary(self):
        spec = ExperimentSpec(n=32, adversary="equivocate", backend="vectorized")
        with pytest.raises(ValueError, match="adversar"):
            spec.validate()

    def test_relax_spec_reverts_backend(self):
        spec = ExperimentSpec(n=32, protocol="full_ba", backend="vectorized")
        relaxed = get_protocol("full_ba").relax_spec(spec)
        assert relaxed.backend == "message"
        relaxed.validate()

    def test_supports_backends_registry_surface(self):
        assert get_protocol("aer").supports_backends == ("message", "vectorized")
        assert get_protocol("sample_majority").supports_backends == (
            "message",
            "vectorized",
        )
        assert get_protocol("full_ba").supports_backends == ("message",)


class TestOverlapStatistics:
    def test_overlapping_intervals(self):
        a = MeanEstimate(mean=10.0, half_width=1.0, count=5)
        b = MeanEstimate(mean=11.5, half_width=1.0, count=5)
        assert a.overlaps(b) and b.overlaps(a)

    def test_disjoint_intervals(self):
        a = MeanEstimate(mean=10.0, half_width=1.0, count=5)
        b = MeanEstimate(mean=13.0, half_width=1.0, count=5)
        assert not a.overlaps(b) and not b.overlaps(a)

    def test_point_estimate_containment(self):
        point = MeanEstimate(mean=10.0, half_width=0.0, count=1)
        wide = MeanEstimate(mean=9.5, half_width=1.0, count=5)
        assert point.overlaps(wide)
        assert not point.overlaps(MeanEstimate(mean=12.0, half_width=1.0, count=5))

    def test_touching_intervals_overlap(self):
        a = MeanEstimate(mean=10.0, half_width=1.0, count=5)
        b = MeanEstimate(mean=12.0, half_width=1.0, count=5)
        assert a.overlaps(b)

    def test_distributions_equivalent_same_sample(self):
        sample = [8.0, 9.0, 10.0, 11.0, 12.0]
        assert distributions_equivalent(sample, sample)

    def test_distributions_equivalent_shifted_far(self):
        a = [10.0, 10.1, 10.2, 9.9, 9.8]
        b = [v + 5.0 for v in a]
        assert not distributions_equivalent(a, b)

    def test_z_widens_interval(self):
        a = [10.0, 10.2, 9.8, 10.1, 9.9]
        b = [v + 0.5 for v in a]
        assert not distributions_equivalent(a, b, z=1.96)
        assert distributions_equivalent(a, b, z=12.0)

    def test_mean_ci_overlap_matches_helper(self):
        a = [1.0, 2.0, 3.0]
        b = [2.5, 3.5, 4.5]
        assert distributions_equivalent(a, b) == mean_ci(a).overlaps(mean_ci(b))
