"""Unit tests for the pull phase (repro.core.pull, Algorithms 1-3)."""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from repro.core.messages import (
    AnswerMessage,
    Fw1Message,
    Fw2Message,
    PollMessage,
    PullMessage,
)
from repro.core.pull import PullEngine
from repro.samplers.base import SamplerSpec
from repro.samplers.hash_sampler import QuorumSampler
from repro.samplers.poll_sampler import PollSampler

SPEC = SamplerSpec(n=40, quorum_size=7, label_space=1600, seed=4)
GSTRING = "110011001100"
OTHER = "000000000000"


class FakeOwner:
    """Stands in for an AERNode: records sends, tracks belief and decision."""

    def __init__(self, node_id: int, believed: str = GSTRING) -> None:
        self.node_id = node_id
        self.believed = believed
        self.sent: List[Tuple[int, object]] = []
        self.decision: Optional[str] = None
        self.engine: Optional[PullEngine] = None
        self._labels = iter(range(100, 100 + 64))

    @property
    def has_decided(self) -> bool:
        return self.decision is not None

    def send(self, dest: int, message) -> None:
        self.sent.append((dest, message))

    def send_many(self, dests, message) -> None:
        for dest in dests:
            self.sent.append((dest, message))

    def decide(self, value) -> None:
        if self.decision is None:
            self.decision = str(value)
            self.believed = str(value)
            if self.engine is not None:
                self.engine.on_decided(self.believed)

    def random_label(self, label_space: int) -> int:
        return next(self._labels) % label_space

    def sent_of_type(self, message_type) -> List[Tuple[int, object]]:
        return [(dest, msg) for dest, msg in self.sent if isinstance(msg, message_type)]


@pytest.fixture(scope="module")
def samplers():
    return QuorumSampler(SPEC, name="H"), PollSampler(SPEC)


def make_engine(samplers, node_id=0, believed=GSTRING, budget=8):
    pull_sampler, poll_sampler = samplers
    owner = FakeOwner(node_id, believed=believed)
    engine = PullEngine(owner, pull_sampler, poll_sampler, answer_budget=budget)
    owner.engine = engine
    return owner, engine


class TestStartPoll:
    def test_sends_poll_to_poll_list_and_pull_to_quorum(self, samplers):
        pull_sampler, poll_sampler = samplers
        owner, engine = make_engine(samplers)
        engine.start_poll(GSTRING)
        label = engine.labels[GSTRING]
        poll_dests = {dest for dest, _ in owner.sent_of_type(PollMessage)}
        pull_dests = {dest for dest, _ in owner.sent_of_type(PullMessage)}
        assert poll_dests == set(poll_sampler.poll_list(owner.node_id, label))
        assert pull_dests == set(pull_sampler.quorum(GSTRING, owner.node_id))

    def test_idempotent(self, samplers):
        owner, engine = make_engine(samplers)
        engine.start_poll(GSTRING)
        first = len(owner.sent)
        engine.start_poll(GSTRING)
        assert len(owner.sent) == first

    def test_not_started_after_decision(self, samplers):
        owner, engine = make_engine(samplers)
        owner.decision = GSTRING
        engine.start_poll(OTHER)
        assert OTHER not in engine.labels

    def test_distinct_labels_per_candidate(self, samplers):
        owner, engine = make_engine(samplers)
        engine.start_poll(GSTRING)
        engine.start_poll(OTHER)
        assert engine.labels[GSTRING] != engine.labels[OTHER]

    def test_polls_launched_counter(self, samplers):
        owner, engine = make_engine(samplers)
        assert engine.polls_launched == 0
        engine.start_poll(GSTRING)
        assert engine.polls_launched == 1


class TestAnswerCounting:
    def test_decides_on_poll_list_majority(self, samplers):
        pull_sampler, poll_sampler = samplers
        owner, engine = make_engine(samplers)
        engine.start_poll(GSTRING)
        label = engine.labels[GSTRING]
        members = poll_sampler.poll_list(owner.node_id, label)
        threshold = poll_sampler.majority_threshold(owner.node_id, label)
        for member in members[:threshold]:
            engine.on_answer(member, AnswerMessage(candidate=GSTRING))
        assert owner.decision == GSTRING

    def test_minority_does_not_decide(self, samplers):
        _, poll_sampler = samplers
        owner, engine = make_engine(samplers)
        engine.start_poll(GSTRING)
        label = engine.labels[GSTRING]
        members = poll_sampler.poll_list(owner.node_id, label)
        threshold = poll_sampler.majority_threshold(owner.node_id, label)
        for member in members[: threshold - 1]:
            engine.on_answer(member, AnswerMessage(candidate=GSTRING))
        assert owner.decision is None

    def test_duplicate_answers_counted_once(self, samplers):
        _, poll_sampler = samplers
        owner, engine = make_engine(samplers)
        engine.start_poll(GSTRING)
        label = engine.labels[GSTRING]
        member = poll_sampler.poll_list(owner.node_id, label)[0]
        for _ in range(20):
            engine.on_answer(member, AnswerMessage(candidate=GSTRING))
        assert owner.decision is None
        assert engine.answers_for(GSTRING) == 1

    def test_answers_from_outside_poll_list_ignored(self, samplers):
        _, poll_sampler = samplers
        owner, engine = make_engine(samplers)
        engine.start_poll(GSTRING)
        label = engine.labels[GSTRING]
        members = set(poll_sampler.poll_list(owner.node_id, label))
        outsiders = [i for i in range(SPEC.n) if i not in members]
        for outsider in outsiders:
            engine.on_answer(outsider, AnswerMessage(candidate=GSTRING))
        assert owner.decision is None

    def test_answers_for_unpolled_candidate_ignored(self, samplers):
        owner, engine = make_engine(samplers)
        engine.on_answer(1, AnswerMessage(candidate="never-polled"))
        assert engine.answers_for("never-polled") == 0


class TestProxyHops:
    def _poller_setup(self, samplers, poller_id=5, label=7):
        """Pick a proxy node that belongs to H(GSTRING, poller)."""
        pull_sampler, poll_sampler = samplers
        proxy_id = pull_sampler.quorum(GSTRING, poller_id)[0]
        return poller_id, proxy_id, label

    def test_on_pull_forwards_fw1_to_pull_quorums_of_poll_list(self, samplers):
        pull_sampler, poll_sampler = samplers
        poller, proxy, label = self._poller_setup(samplers)
        owner, engine = make_engine(samplers, node_id=proxy, believed=GSTRING)
        engine.on_pull(poller, PullMessage(candidate=GSTRING, label=label))
        fw1 = owner.sent_of_type(Fw1Message)
        expected_targets = poll_sampler.poll_list(poller, label)
        assert fw1, "proxy should forward Fw1 messages"
        assert {msg.target for _, msg in fw1} == set(expected_targets)
        for dest, msg in fw1:
            assert dest in pull_sampler.quorum(GSTRING, msg.target)

    def test_on_pull_ignored_if_not_in_quorum(self, samplers):
        pull_sampler, _ = samplers
        poller = 5
        not_member = next(
            i for i in range(SPEC.n) if i not in pull_sampler.quorum(GSTRING, poller)
        )
        owner, engine = make_engine(samplers, node_id=not_member, believed=GSTRING)
        engine.on_pull(poller, PullMessage(candidate=GSTRING, label=3))
        assert owner.sent == []

    def test_on_pull_deferred_when_candidate_not_believed(self, samplers):
        poller, proxy, label = self._poller_setup(samplers)
        owner, engine = make_engine(samplers, node_id=proxy, believed=OTHER)
        engine.on_pull(poller, PullMessage(candidate=GSTRING, label=label))
        assert owner.sent_of_type(Fw1Message) == []
        # once the proxy decides GSTRING the pending pull is served
        owner.decide(GSTRING)
        assert owner.sent_of_type(Fw1Message) != []

    def test_on_pull_served_once(self, samplers):
        poller, proxy, label = self._poller_setup(samplers)
        owner, engine = make_engine(samplers, node_id=proxy, believed=GSTRING)
        message = PullMessage(candidate=GSTRING, label=label)
        engine.on_pull(poller, message)
        count = len(owner.sent)
        engine.on_pull(poller, message)
        assert len(owner.sent) == count

    def test_fw1_majority_triggers_fw2(self, samplers):
        pull_sampler, poll_sampler = samplers
        poller, label = 5, 7
        target = poll_sampler.poll_list(poller, label)[0]
        me = pull_sampler.quorum(GSTRING, target)[0]
        owner, engine = make_engine(samplers, node_id=me, believed=GSTRING)
        origin_quorum = pull_sampler.quorum(GSTRING, poller)
        threshold = pull_sampler.majority_threshold(GSTRING, poller)
        message = Fw1Message(origin=poller, candidate=GSTRING, label=label, target=target)
        for sender in origin_quorum[:threshold]:
            engine.on_fw1(sender, message)
        fw2 = owner.sent_of_type(Fw2Message)
        assert len(fw2) == 1
        assert fw2[0][0] == target

    def test_fw1_below_majority_no_fw2(self, samplers):
        pull_sampler, poll_sampler = samplers
        poller, label = 5, 7
        target = poll_sampler.poll_list(poller, label)[0]
        me = pull_sampler.quorum(GSTRING, target)[0]
        owner, engine = make_engine(samplers, node_id=me, believed=GSTRING)
        origin_quorum = pull_sampler.quorum(GSTRING, poller)
        threshold = pull_sampler.majority_threshold(GSTRING, poller)
        message = Fw1Message(origin=poller, candidate=GSTRING, label=label, target=target)
        for sender in origin_quorum[: threshold - 1]:
            engine.on_fw1(sender, message)
        assert owner.sent_of_type(Fw2Message) == []

    def test_fw1_forged_label_does_not_count_after_state_exists(self, samplers):
        """A quorum member forging the label gets no vote, even on a warm key.

        Regression for the columnar fast path: once a legitimate Fw1 created
        the per-key state, later Fw1s carrying a label whose ``(origin,
        label, target)`` triple is *not* a real poll-list edge must still be
        filtered — a Byzantine member of ``H(s, origin)`` must not complete
        the majority with forged-label copies, and the forged label must not
        leak into the eventual Fw2.
        """
        pull_sampler, poll_sampler = samplers
        poller, label = 5, 7
        target = poll_sampler.poll_list(poller, label)[0]
        bogus_label = next(
            r for r in range(poll_sampler.label_space)
            if not poll_sampler.contains(poller, r, target)
        )
        me = pull_sampler.quorum(GSTRING, target)[0]
        owner, engine = make_engine(samplers, node_id=me, believed=GSTRING)
        origin_quorum = pull_sampler.quorum(GSTRING, poller)
        threshold = pull_sampler.majority_threshold(GSTRING, poller)
        good = Fw1Message(origin=poller, candidate=GSTRING, label=label, target=target)
        engine.on_fw1(origin_quorum[0], good)  # creates the per-key state
        for sender in origin_quorum[1:threshold]:
            forged = Fw1Message(
                origin=poller, candidate=GSTRING, label=bogus_label, target=target
            )
            engine.on_fw1(sender, forged)
        assert owner.sent_of_type(Fw2Message) == []  # forged votes did not count
        # the remaining legitimate copies still complete the majority
        for sender in origin_quorum[1:threshold]:
            engine.on_fw1(sender, good)
        fw2 = owner.sent_of_type(Fw2Message)
        assert len(fw2) == 1 and fw2[0][1].label == label

    def test_fw1_from_non_quorum_sender_ignored(self, samplers):
        pull_sampler, poll_sampler = samplers
        poller, label = 5, 7
        target = poll_sampler.poll_list(poller, label)[0]
        me = pull_sampler.quorum(GSTRING, target)[0]
        owner, engine = make_engine(samplers, node_id=me, believed=GSTRING)
        outsider = next(
            i for i in range(SPEC.n) if i not in pull_sampler.quorum(GSTRING, poller)
        )
        message = Fw1Message(origin=poller, candidate=GSTRING, label=label, target=target)
        for _ in range(10):
            engine.on_fw1(outsider, message)
        assert owner.sent_of_type(Fw2Message) == []

    def test_fw2_forwarded_only_once(self, samplers):
        pull_sampler, poll_sampler = samplers
        poller, label = 5, 7
        target = poll_sampler.poll_list(poller, label)[0]
        me = pull_sampler.quorum(GSTRING, target)[0]
        owner, engine = make_engine(samplers, node_id=me, believed=GSTRING)
        origin_quorum = pull_sampler.quorum(GSTRING, poller)
        message = Fw1Message(origin=poller, candidate=GSTRING, label=label, target=target)
        for sender in origin_quorum:
            engine.on_fw1(sender, message)
        assert len(owner.sent_of_type(Fw2Message)) == 1


class TestPollListAnswering:
    def _answering_setup(self, samplers, budget=8, believed=GSTRING):
        """Create an engine for a node that is on the poll list of a poller."""
        pull_sampler, poll_sampler = samplers
        poller, label = 9, 11
        me = poll_sampler.poll_list(poller, label)[0]
        owner, engine = make_engine(samplers, node_id=me, believed=believed, budget=budget)
        quorum = pull_sampler.quorum(GSTRING, me)
        threshold = pull_sampler.majority_threshold(GSTRING, me)
        return owner, engine, poller, label, quorum, threshold

    def test_answer_requires_poll_and_fw2_majority(self, samplers):
        owner, engine, poller, label, quorum, threshold = self._answering_setup(samplers)
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        for sender in quorum[:threshold]:
            engine.on_fw2(sender, Fw2Message(origin=poller, candidate=GSTRING, label=label))
        answers = owner.sent_of_type(AnswerMessage)
        assert len(answers) == 1
        assert answers[0][0] == poller

    def test_no_answer_without_poll(self, samplers):
        owner, engine, poller, label, quorum, threshold = self._answering_setup(samplers)
        for sender in quorum[:threshold]:
            engine.on_fw2(sender, Fw2Message(origin=poller, candidate=GSTRING, label=label))
        assert owner.sent_of_type(AnswerMessage) == []

    def test_no_answer_without_fw2_majority(self, samplers):
        owner, engine, poller, label, quorum, threshold = self._answering_setup(samplers)
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        for sender in quorum[: threshold - 1]:
            engine.on_fw2(sender, Fw2Message(origin=poller, candidate=GSTRING, label=label))
        assert owner.sent_of_type(AnswerMessage) == []

    def test_poll_after_fw2_majority_answers_immediately(self, samplers):
        # "Necessary in the asynchronous case": Fw2s may arrive before the Poll.
        owner, engine, poller, label, quorum, threshold = self._answering_setup(samplers)
        for sender in quorum[:threshold]:
            engine.on_fw2(sender, Fw2Message(origin=poller, candidate=GSTRING, label=label))
        assert owner.sent_of_type(AnswerMessage) == []
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        assert len(owner.sent_of_type(AnswerMessage)) == 1

    def test_answer_sent_once(self, samplers):
        owner, engine, poller, label, quorum, threshold = self._answering_setup(samplers)
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        for sender in quorum:
            engine.on_fw2(sender, Fw2Message(origin=poller, candidate=GSTRING, label=label))
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        assert len(owner.sent_of_type(AnswerMessage)) == 1

    def test_budget_defers_answers_until_decision(self, samplers):
        owner, engine, poller, label, quorum, threshold = self._answering_setup(samplers, budget=0)
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        for sender in quorum[:threshold]:
            engine.on_fw2(sender, Fw2Message(origin=poller, candidate=GSTRING, label=label))
        assert owner.sent_of_type(AnswerMessage) == []  # budget exhausted (0)
        owner.decide(GSTRING)
        assert len(owner.sent_of_type(AnswerMessage)) == 1

    def test_budget_counts_only_pre_decision_answers(self, samplers):
        owner, engine, poller, label, quorum, threshold = self._answering_setup(samplers, budget=1)
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        for sender in quorum[:threshold]:
            engine.on_fw2(sender, Fw2Message(origin=poller, candidate=GSTRING, label=label))
        assert engine.answers_sent == 1

    def test_fw2_for_unbelieved_candidate_recorded_then_answered_after_decision(self, samplers):
        owner, engine, poller, label, quorum, threshold = self._answering_setup(
            samplers, believed=OTHER
        )
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        for sender in quorum[:threshold]:
            engine.on_fw2(sender, Fw2Message(origin=poller, candidate=GSTRING, label=label))
        assert owner.sent_of_type(AnswerMessage) == []
        owner.decide(GSTRING)
        assert len(owner.sent_of_type(AnswerMessage)) == 1

    def test_fw2_from_outside_own_pull_quorum_ignored(self, samplers):
        pull_sampler, poll_sampler = samplers
        owner, engine, poller, label, quorum, threshold = self._answering_setup(samplers)
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        outsiders = [i for i in range(SPEC.n) if i not in quorum]
        for sender in outsiders:
            engine.on_fw2(sender, Fw2Message(origin=poller, candidate=GSTRING, label=label))
        assert owner.sent_of_type(AnswerMessage) == []

    def test_poll_for_node_not_on_list_ignored(self, samplers):
        _, poll_sampler = samplers
        poller, label = 9, 11
        not_member = next(
            i for i in range(SPEC.n) if i not in poll_sampler.poll_list(poller, label)
        )
        owner, engine = make_engine(samplers, node_id=not_member)
        engine.on_poll(poller, PollMessage(candidate=GSTRING, label=label))
        assert (poller, GSTRING) not in engine._polled
