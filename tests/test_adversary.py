"""Tests for the adversary framework and its strategies."""

from __future__ import annotations

import random

import pytest

from repro.adversary.base import Adversary, AdversaryKnowledge
from repro.adversary.cornering import CorneringAdversary
from repro.adversary.corruption import quorum_targeting_corrupt_set, random_corrupt_set
from repro.adversary.delays import SlowKnowledgeableDelays, TargetedDelayAdversary
from repro.adversary.flooding import PushFloodAdversary, QuorumTargetedFloodAdversary
from repro.adversary.strategies import (
    EquivocatingPushAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
    WrongAnswerAdversary,
)
from repro.core.messages import PollMessage
from repro.net.asynchronous import MIN_DELAY
from repro.net.simulator import SendRecord
from repro.runner import make_adversary, run_aer


@pytest.fixture(scope="module")
def knowledge(small_config_module, small_scenario_module, small_samplers_module):
    return AdversaryKnowledge(
        config=small_config_module,
        samplers=small_samplers_module,
        scenario=small_scenario_module,
    )


# module-scoped clones of the session fixtures (pytest cannot mix scopes here)
@pytest.fixture(scope="module")
def small_config_module():
    from repro.core.config import AERConfig

    return AERConfig.for_system(32, sampler_seed=11)


@pytest.fixture(scope="module")
def small_scenario_module(small_config_module):
    from repro.core.scenario import make_scenario

    return make_scenario(32, config=small_config_module, t=5, knowledge_fraction=0.78, seed=11)


@pytest.fixture(scope="module")
def small_samplers_module(small_config_module):
    return small_config_module.build_samplers()


class TestCorruptionSelectors:
    def test_random_corrupt_set_size(self):
        corrupt = random_corrupt_set(50, 10, random.Random(0))
        assert len(corrupt) == 10
        assert all(0 <= i < 50 for i in corrupt)

    def test_random_corrupt_set_bounds(self):
        with pytest.raises(ValueError):
            random_corrupt_set(10, 11, random.Random(0))

    def test_quorum_targeting_set_size(self, small_samplers_module):
        corrupt = quorum_targeting_corrupt_set(
            32, 8, small_samplers_module, target_string="11110000", rng=random.Random(1)
        )
        assert len(corrupt) == 8

    def test_quorum_targeting_concentrates_in_quorums(self, small_samplers_module):
        target = "1010101010"
        corrupt = quorum_targeting_corrupt_set(
            32, 10, small_samplers_module, target_string=target, rng=random.Random(2), victim_count=2
        )
        # at least one victim's push quorum should be mostly corrupted
        best = 0
        for victim in range(32):
            quorum = small_samplers_module.push.quorum(target, victim)
            best = max(best, sum(1 for m in quorum if m in corrupt))
        assert best >= len(quorum) // 2

    def test_quorum_targeting_bounds(self, small_samplers_module):
        with pytest.raises(ValueError):
            quorum_targeting_corrupt_set(10, 20, small_samplers_module, "s", random.Random(0))


class TestAdversaryBase:
    def test_byzantine_ids_frozen(self, knowledge):
        adversary = Adversary([1, 2, 3], knowledge)
        assert adversary.byzantine_ids == frozenset({1, 2, 3})

    def test_context_required_for_sending(self, knowledge):
        adversary = Adversary([1], knowledge)
        with pytest.raises(RuntimeError):
            adversary.send_as(1, 0, PollMessage(candidate="0", label=0))

    def test_knowledge_accessors(self, knowledge, small_scenario_module):
        assert knowledge.gstring == small_scenario_module.gstring
        assert knowledge.correct_ids == small_scenario_module.correct_ids
        assert knowledge.knowledgeable_ids == small_scenario_module.knowledgeable_ids

    def test_default_delay_is_none(self, knowledge):
        adversary = Adversary([1], knowledge)
        record = SendRecord(0, 1, PollMessage(candidate="0", label=0), 0.0)
        assert adversary.delay_for(record) is None


class TestStrategyRegistry:
    def test_make_adversary_none(self, small_scenario_module, small_config_module, small_samplers_module):
        adversary = make_adversary("none", small_scenario_module, small_config_module, small_samplers_module)
        assert adversary is None

    def test_make_adversary_unknown_name(self, small_scenario_module, small_config_module, small_samplers_module):
        with pytest.raises(ValueError):
            make_adversary("nope", small_scenario_module, small_config_module, small_samplers_module)

    @pytest.mark.parametrize(
        "name,expected_type",
        [
            ("silent", SilentAdversary),
            ("noise", RandomNoiseAdversary),
            ("equivocate", EquivocatingPushAdversary),
            ("wrong_answer", WrongAnswerAdversary),
            ("push_flood", PushFloodAdversary),
            ("quorum_flood", QuorumTargetedFloodAdversary),
            ("cornering", CorneringAdversary),
            ("slow_knowledgeable", SlowKnowledgeableDelays),
        ],
    )
    def test_registry_types(self, name, expected_type, small_scenario_module, small_config_module, small_samplers_module):
        adversary = make_adversary(name, small_scenario_module, small_config_module, small_samplers_module)
        assert isinstance(adversary, expected_type)
        assert adversary.byzantine_ids == small_scenario_module.byzantine_ids


class TestStrategyBehaviour:
    """Run each strategy inside a real simulation and check its observable effect."""

    def _run(self, name, scenario, config, samplers, **kwargs):
        adversary = make_adversary(name, scenario, config, samplers)
        result = run_aer(
            scenario, config=config, adversary=adversary, seed=17, samplers=samplers, **kwargs
        )
        return adversary, result

    def test_silent_adversary_sends_nothing(self, small_scenario_module, small_config_module, small_samplers_module):
        adversary, result = self._run("silent", small_scenario_module, small_config_module, small_samplers_module)
        assert adversary.messages_sent == 0
        assert result.agreement_reached

    def test_noise_adversary_sends_but_is_harmless(self, small_scenario_module, small_config_module, small_samplers_module):
        adversary, result = self._run("noise", small_scenario_module, small_config_module, small_samplers_module)
        assert adversary.messages_sent > 0
        assert result.agreement_reached
        assert result.agreement_value() == small_scenario_module.gstring

    def test_equivocation_is_harmless(self, small_scenario_module, small_config_module, small_samplers_module):
        adversary, result = self._run("equivocate", small_scenario_module, small_config_module, small_samplers_module)
        assert adversary.messages_sent > 0
        assert result.agreement_value() == small_scenario_module.gstring

    def test_wrong_answer_never_breaks_safety(self, small_scenario_module, small_config_module, small_samplers_module):
        adversary, result = self._run("wrong_answer", small_scenario_module, small_config_module, small_samplers_module)
        wrong = adversary.wrong_string
        assert all(value != wrong for value in result.decisions.values())

    def test_push_flood_does_not_break_agreement(self, small_scenario_module, small_config_module, small_samplers_module):
        adversary, result = self._run("push_flood", small_scenario_module, small_config_module, small_samplers_module)
        assert adversary.messages_sent > 0
        assert result.agreement_value() == small_scenario_module.gstring

    def test_quorum_flood_reports_forced_strings(self, small_scenario_module, small_config_module, small_samplers_module):
        adversary, result = self._run("quorum_flood", small_scenario_module, small_config_module, small_samplers_module)
        assert result.agreement_value() == small_scenario_module.gstring
        assert adversary.total_forced == sum(len(v) for v in adversary.forced.values())

    def test_cornering_attack_in_async_mode(self, small_scenario_module, small_config_module, small_samplers_module):
        adversary, result = self._run(
            "cornering", small_scenario_module, small_config_module, small_samplers_module, mode="async"
        )
        assert adversary.attacked_targets > 0
        assert result.agreement_value() == small_scenario_module.gstring

    def test_slow_knowledgeable_delays(self, small_scenario_module, small_config_module, small_samplers_module, knowledge):
        adversary = SlowKnowledgeableDelays(small_scenario_module.byzantine_ids, knowledge)
        knowledgeable = small_scenario_module.knowledgeable_ids[0]
        other = next(
            i for i in small_scenario_module.correct_ids
            if i not in small_scenario_module.knowledgeable_ids
        )
        slow = adversary.delay_for(SendRecord(knowledgeable, 0, PollMessage(candidate="0", label=0), 0.0))
        fast = adversary.delay_for(SendRecord(other, 0, PollMessage(candidate="0", label=0), 0.0))
        assert slow == 1.0
        assert fast == MIN_DELAY

    def test_targeted_delay_adversary(self, small_scenario_module, knowledge):
        adversary = TargetedDelayAdversary(small_scenario_module.byzantine_ids, knowledge, victims=[3])
        hit = adversary.delay_for(SendRecord(3, 0, PollMessage(candidate="0", label=0), 0.0))
        miss = adversary.delay_for(SendRecord(1, 0, PollMessage(candidate="0", label=0), 0.0))
        assert hit == 1.0
        assert miss == MIN_DELAY

    def test_cornering_respects_request_budget(self, small_scenario_module, small_config_module, small_samplers_module, knowledge):
        adversary = CorneringAdversary(
            small_scenario_module.byzantine_ids, knowledge, requests_per_node=1, delay_honest=False
        )
        result = run_aer(
            small_scenario_module,
            config=small_config_module,
            adversary=adversary,
            mode="async",
            seed=23,
            samplers=small_samplers_module,
        )
        assert result.agreement_value() == small_scenario_module.gstring
        budgets = adversary._budget_left
        assert all(left >= 0 for left in budgets.values())
