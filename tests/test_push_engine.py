"""Unit tests for the push phase (repro.core.push)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.push import PushEngine
from repro.samplers.base import SamplerSpec
from repro.samplers.hash_sampler import QuorumSampler

SPEC = SamplerSpec(n=40, quorum_size=7, label_space=1600, seed=2)


@pytest.fixture(scope="module")
def push_sampler():
    return QuorumSampler(SPEC, name="I")


def make_engine(push_sampler, node_id=3, candidate="1010"):
    return PushEngine(node_id=node_id, push_sampler=push_sampler, initial_candidate=candidate)


class TestTargets:
    def test_targets_match_inverse(self, push_sampler):
        engine = make_engine(push_sampler)
        assert engine.push_targets() == push_sampler.inverse("1010", 3)

    def test_target_quorums_contain_sender(self, push_sampler):
        engine = make_engine(push_sampler, node_id=8, candidate="1111")
        for target in engine.push_targets():
            assert 8 in push_sampler.quorum("1111", target)

    def test_target_count_is_moderate(self, push_sampler):
        # Lemma 3: no node is overloaded, so the number of targets is O(d).
        engine = make_engine(push_sampler)
        assert len(engine.push_targets()) <= 4 * SPEC.quorum_size


class TestAcceptance:
    def test_own_candidate_always_present(self, push_sampler):
        engine = make_engine(push_sampler, candidate="mine")
        assert "mine" in engine.candidates

    def test_push_from_outside_quorum_ignored(self, push_sampler):
        engine = make_engine(push_sampler, node_id=0)
        quorum = push_sampler.quorum("s", 0)
        outsider = next(i for i in range(SPEC.n) if i not in quorum)
        assert engine.receive_push(outsider, "s") is None
        assert engine.ignored_pushes == 1
        assert "s" not in engine.candidates

    def test_minority_does_not_accept(self, push_sampler):
        engine = make_engine(push_sampler, node_id=0)
        quorum = push_sampler.quorum("s", 0)
        below = (len(quorum) // 2 + 1) - 1
        for sender in quorum[:below]:
            assert engine.receive_push(sender, "s") is None
        assert "s" not in engine.candidates

    def test_majority_accepts_and_returns_candidate(self, push_sampler):
        engine = make_engine(push_sampler, node_id=0)
        quorum = push_sampler.quorum("s", 0)
        needed = len(quorum) // 2 + 1
        results = [engine.receive_push(sender, "s") for sender in quorum[:needed]]
        assert results[-1] == "s"
        assert all(r is None for r in results[:-1])
        assert "s" in engine.candidates

    def test_duplicate_votes_do_not_count_twice(self, push_sampler):
        engine = make_engine(push_sampler, node_id=0)
        quorum = push_sampler.quorum("s", 0)
        voter = quorum[0]
        for _ in range(10):
            assert engine.receive_push(voter, "s") is None
        assert "s" not in engine.candidates

    def test_already_accepted_string_returns_none(self, push_sampler):
        engine = make_engine(push_sampler, node_id=0, candidate="s")
        quorum = push_sampler.quorum("s", 0)
        assert engine.receive_push(quorum[0], "s") is None

    def test_accepting_one_string_does_not_affect_another(self, push_sampler):
        engine = make_engine(push_sampler, node_id=0)
        q1 = push_sampler.quorum("s1", 0)
        for sender in q1[: len(q1) // 2 + 1]:
            engine.receive_push(sender, "s1")
        assert "s1" in engine.candidates
        assert "s2" not in engine.candidates

    def test_candidate_list_size(self, push_sampler):
        engine = make_engine(push_sampler, node_id=0, candidate="own")
        assert engine.candidate_list_size == 1
        quorum = push_sampler.quorum("x", 0)
        for sender in quorum[: len(quorum) // 2 + 1]:
            engine.receive_push(sender, "x")
        assert engine.candidate_list_size == 2

    def test_tracked_strings_listed_and_cleared_on_accept(self, push_sampler):
        engine = make_engine(push_sampler, node_id=0)
        quorum = push_sampler.quorum("t", 0)
        engine.receive_push(quorum[0], "t")
        assert engine.tracked_strings() == ["t"]
        for sender in quorum[1 : len(quorum) // 2 + 1]:
            engine.receive_push(sender, "t")
        assert engine.tracked_strings() == []

    def test_tracking_cap_limits_memory(self, push_sampler):
        engine = PushEngine(0, push_sampler, "own", max_tracked_strings=2)
        strings = []
        # find strings whose quorum at node 0 contains node 1 (so votes register)
        candidate = 0
        while len(strings) < 4:
            s = f"junk-{candidate}"
            candidate += 1
            if 1 in push_sampler.quorum(s, 0):
                strings.append(s)
        for s in strings:
            engine.receive_push(1, s)
        assert len(engine.tracked_strings()) <= 2

    @given(st.integers(min_value=0, max_value=39), st.text(alphabet="01", min_size=1, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_acceptance_requires_majority(self, node_id, candidate):
        sampler = QuorumSampler(SPEC, name="I")
        engine = PushEngine(node_id=node_id, push_sampler=sampler, initial_candidate="own")
        quorum = sampler.quorum(candidate, node_id)
        threshold = len(quorum) // 2 + 1
        accepted_at = None
        for index, sender in enumerate(quorum, start=1):
            if engine.receive_push(sender, candidate) is not None:
                accepted_at = index
                break
        if candidate == "own":
            assert accepted_at is None
        else:
            assert accepted_at == threshold
