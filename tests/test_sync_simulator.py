"""Tests for the synchronous scheduler and the node/adversary wiring."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import pytest

from repro.net.messages import Message, SizeModel
from repro.net.node import Node
from repro.net.simulator import SendRecord, Simulator, build_node_ids
from repro.net.sync import SynchronousSimulator


@dataclass(frozen=True)
class Ping(Message):
    payload: int = 0
    kind: str = "ping"


class EchoNode(Node):
    """Sends one ping to its successor at start and records what it receives."""

    def __init__(self, node_id: int, n: int) -> None:
        super().__init__(node_id)
        self.n = n
        self.received: List[tuple] = []
        self.rounds_seen: List[int] = []

    def on_start(self) -> None:
        self.send((self.node_id + 1) % self.n, Ping(payload=self.node_id))

    def on_round(self, round_no: int) -> None:
        self.rounds_seen.append(round_no)

    def on_message(self, sender: int, message: Message) -> None:
        self.received.append((sender, message, self.context.now()))
        self.decide("done")


class DecideImmediatelyNode(Node):
    def on_start(self) -> None:
        self.decide("now")


class SilentTestAdversary:
    """Minimal AdversaryProtocol implementation used to probe the scheduler."""

    def __init__(self, byz_ids):
        self._byz = frozenset(byz_ids)
        self.observed_rounds: List[Optional[List[SendRecord]]] = []
        self.delivered: List[tuple] = []
        self.context = None

    @property
    def byzantine_ids(self):
        return self._byz

    def bind(self, context):
        self.context = context

    def on_start(self):
        pass

    def on_deliver(self, byz_id, sender, message):
        self.delivered.append((byz_id, sender, message))

    def on_round(self, round_no, observed):
        self.observed_rounds.append(observed)

    def observe_send(self, record):
        pass

    def delay_for(self, record):
        return None


def ring(n: int) -> List[EchoNode]:
    return [EchoNode(i, n) for i in range(n)]


class TestBasicExecution:
    def test_messages_delivered_next_round(self):
        nodes = ring(4)
        sim = SynchronousSimulator(nodes=nodes, n=4, seed=0)
        result = sim.run()
        # sends happen at round 0 and are delivered during round 1
        assert all(time == 1.0 for node in nodes for (_, _, time) in node.received)
        assert result.rounds == 1

    def test_every_node_receives_exactly_one_ping(self):
        nodes = ring(5)
        SynchronousSimulator(nodes=nodes, n=5, seed=0).run()
        assert all(len(node.received) == 1 for node in nodes)

    def test_sender_identity_is_authentic(self):
        nodes = ring(5)
        SynchronousSimulator(nodes=nodes, n=5, seed=0).run()
        for node in nodes:
            sender, message, _ = node.received[0]
            assert sender == (node.node_id - 1) % 5
            assert message.payload == sender

    def test_result_reports_all_decisions(self):
        nodes = ring(3)
        result = SynchronousSimulator(nodes=nodes, n=3, seed=0).run()
        assert result.all_correct_decided
        assert result.agreement_value() == "done"

    def test_immediate_decision_gives_zero_rounds(self):
        nodes = [DecideImmediatelyNode(i) for i in range(3)]
        result = SynchronousSimulator(nodes=nodes, n=3, seed=0).run()
        assert result.rounds == 0

    def test_metrics_count_messages(self):
        nodes = ring(4)
        result = SynchronousSimulator(nodes=nodes, n=4, seed=0).run()
        assert result.metrics.total_messages == 4

    def test_max_rounds_cap(self):
        class Chatter(Node):
            def on_start(self):
                self.send(self.node_id, Ping())

            def on_message(self, sender, message):
                self.send(self.node_id, Ping())  # never decides, always re-sends

        sim = SynchronousSimulator(nodes=[Chatter(0)], n=1, seed=0, max_rounds=5)
        result = sim.run()
        assert result.rounds == 5
        assert not result.all_correct_decided

    def test_quiescence_stops_run(self):
        class OneShot(Node):
            def on_start(self):
                self.send(self.node_id, Ping())

        sim = SynchronousSimulator(nodes=[OneShot(0)], n=1, seed=0, max_rounds=50)
        result = sim.run()
        assert result.rounds <= 2

    def test_min_rounds_defers_quiescence(self):
        class LateSender(Node):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.sent_late = False

            def on_round(self, round_no):
                if round_no == 4:
                    self.sent_late = True
                    self.decide("late")

        node = LateSender(0)
        sim = SynchronousSimulator(nodes=[node], n=1, seed=0, min_rounds=6, max_rounds=10)
        result = sim.run()
        assert node.sent_late
        assert result.all_correct_decided


class TestValidation:
    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError):
            SynchronousSimulator(nodes=[EchoNode(0, 2), EchoNode(0, 2)], n=2, seed=0)

    def test_node_cannot_also_be_byzantine(self):
        adversary = SilentTestAdversary({1})
        with pytest.raises(ValueError):
            SynchronousSimulator(nodes=ring(2), n=2, adversary=adversary, seed=0)

    def test_send_outside_range_rejected(self):
        class BadSender(Node):
            def on_start(self):
                self.send(99, Ping())

        with pytest.raises(ValueError):
            SynchronousSimulator(nodes=[BadSender(0)], n=1, seed=0).run()

    def test_unbound_node_send_raises(self):
        node = EchoNode(0, 2)
        with pytest.raises(RuntimeError):
            node.send(1, Ping())

    def test_base_simulator_hooks_are_abstract(self):
        sim = Simulator(nodes=[], n=1, seed=0)
        with pytest.raises(NotImplementedError):
            sim.now()
        with pytest.raises(NotImplementedError):
            sim.run()

    def test_build_node_ids_excludes_byzantine(self):
        assert build_node_ids(5, [1, 3]) == [0, 2, 4]


class TestAdversaryInteraction:
    def test_messages_to_byzantine_reach_adversary(self):
        adversary = SilentTestAdversary({1})
        nodes = [EchoNode(i, 4) for i in (0, 2, 3)]
        SynchronousSimulator(nodes=nodes, n=4, adversary=adversary, seed=0).run()
        assert any(byz_id == 1 for byz_id, _, _ in adversary.delivered)

    def test_rushing_adversary_sees_current_round_sends(self):
        adversary = SilentTestAdversary({3})
        nodes = [EchoNode(i, 4) for i in (0, 1, 2)]
        SynchronousSimulator(nodes=nodes, n=4, adversary=adversary, seed=0, rushing=True).run()
        first_round_view = adversary.observed_rounds[0]
        assert first_round_view is not None
        assert len(first_round_view) == 3  # it saw all three pings before acting

    def test_non_rushing_adversary_sees_nothing_current(self):
        adversary = SilentTestAdversary({3})
        nodes = [EchoNode(i, 4) for i in (0, 1, 2)]
        SynchronousSimulator(nodes=nodes, n=4, adversary=adversary, seed=0, rushing=False).run()
        assert all(view is None for view in adversary.observed_rounds)

    def test_adversary_cannot_forge_sender(self):
        class ForgingAdversary(SilentTestAdversary):
            def on_round(self, round_no, observed):
                super().on_round(round_no, observed)
                if round_no == 0:
                    # identity 0 is an honest node; sending as it must be rejected
                    self.context.send_as(0, 1, Ping())

        adversary = ForgingAdversary({3})
        nodes = [EchoNode(i, 4) for i in (0, 1, 2)]
        sim = SynchronousSimulator(nodes=nodes, n=4, adversary=adversary, seed=0)
        with pytest.raises(PermissionError):
            sim.run()

    def test_adversary_can_send_as_its_own_nodes(self):
        class InjectingAdversary(SilentTestAdversary):
            def on_round(self, round_no, observed):
                super().on_round(round_no, observed)
                if round_no == 0:
                    self.context.send_as(3, 0, Ping(payload=99))

        adversary = InjectingAdversary({3})
        nodes = [EchoNode(i, 4) for i in (0, 1, 2)]
        SynchronousSimulator(nodes=nodes, n=4, adversary=adversary, seed=0).run()
        payloads = [msg.payload for (_, msg, _) in nodes[0].received]
        assert 99 in payloads

    def test_messages_to_nonexistent_nodes_are_dropped(self):
        # With n=4 but only nodes {0,1,2} correct and no adversary, messages to 3 vanish.
        nodes = [EchoNode(i, 4) for i in (0, 1, 2)]
        result = SynchronousSimulator(nodes=nodes, n=4, seed=0).run()
        assert 3 not in result.decisions


class TestDeterminism:
    def test_same_seed_same_metrics(self):
        r1 = SynchronousSimulator(nodes=ring(6), n=6, seed=5).run()
        r2 = SynchronousSimulator(nodes=ring(6), n=6, seed=5).run()
        assert r1.metrics.total_bits == r2.metrics.total_bits
        assert r1.rounds == r2.rounds

    def test_node_rngs_are_private_and_distinct(self):
        class RngProbe(Node):
            def on_start(self):
                self.value = self.context.rng.random()
                self.decide(self.value)

        nodes = [RngProbe(i) for i in range(4)]
        SynchronousSimulator(nodes=nodes, n=4, seed=1).run()
        values = {node.value for node in nodes}
        assert len(values) == 4
