"""Bit-accounting tests for every wire message type."""

from __future__ import annotations

import pytest

from repro.ae.messages import ContributionMessage, EchoMessage, RelayMessage
from repro.baselines.sample_majority import QueryMessage
from repro.core.messages import (
    AnswerMessage,
    Fw1Message,
    Fw2Message,
    PollMessage,
    PullMessage,
    PushMessage,
)
from repro.net.messages import Message, SizeModel


@pytest.fixture
def size_model() -> SizeModel:
    return SizeModel(n=128, label_space=128 * 128)


class TestSizeModel:
    def test_id_bits(self, size_model):
        assert size_model.id_bits == 7

    def test_label_bits(self, size_model):
        assert size_model.label_bits == 14

    def test_small_system_id_bits_at_least_one(self):
        assert SizeModel(n=1).id_bits >= 1
        assert SizeModel(n=2).id_bits == 1

    def test_zero_label_space_means_zero_label_bits(self):
        assert SizeModel(n=16).label_bits == 0

    def test_kind_bits_constant(self, size_model):
        assert size_model.kind_bits == 4


class TestBaseMessage:
    def test_default_bits_is_kind_only(self, size_model):
        assert Message().bits(size_model) == size_model.kind_bits

    def test_describe_returns_kind(self):
        assert Message().describe() == "message"


class TestCoreMessages:
    def test_push_charges_string_length(self, size_model):
        msg = PushMessage(candidate="0" * 24)
        assert msg.bits(size_model) == size_model.kind_bits + 24

    def test_poll_charges_string_and_label(self, size_model):
        msg = PollMessage(candidate="1" * 24, label=3)
        assert msg.bits(size_model) == size_model.kind_bits + 24 + size_model.label_bits

    def test_pull_same_cost_as_poll(self, size_model):
        poll = PollMessage(candidate="1" * 24, label=3)
        pull = PullMessage(candidate="1" * 24, label=3)
        assert poll.bits(size_model) == pull.bits(size_model)

    def test_fw1_charges_two_ids(self, size_model):
        msg = Fw1Message(origin=1, candidate="0" * 10, label=5, target=2)
        expected = size_model.kind_bits + 2 * size_model.id_bits + 10 + size_model.label_bits
        assert msg.bits(size_model) == expected

    def test_fw2_charges_one_id(self, size_model):
        msg = Fw2Message(origin=1, candidate="0" * 10, label=5)
        expected = size_model.kind_bits + size_model.id_bits + 10 + size_model.label_bits
        assert msg.bits(size_model) == expected

    def test_answer_charges_string(self, size_model):
        assert AnswerMessage(candidate="01" * 8).bits(size_model) == size_model.kind_bits + 16

    def test_messages_are_frozen(self):
        msg = PushMessage(candidate="0")
        with pytest.raises(Exception):
            msg.candidate = "1"  # type: ignore[misc]

    def test_kinds_are_distinct(self):
        kinds = {
            PushMessage(candidate="0").kind,
            PollMessage(candidate="0", label=0).kind,
            PullMessage(candidate="0", label=0).kind,
            Fw1Message(origin=0, candidate="0", label=0, target=1).kind,
            Fw2Message(origin=0, candidate="0", label=0).kind,
            AnswerMessage(candidate="0").kind,
        }
        assert len(kinds) == 6

    def test_longer_strings_cost_more(self, size_model):
        short = PushMessage(candidate="0" * 8).bits(size_model)
        long = PushMessage(candidate="0" * 64).bits(size_model)
        assert long - short == 56


class TestAeMessages:
    def test_contribution_cost(self, size_model):
        assert ContributionMessage(bits_value="0" * 20).bits(size_model) == size_model.kind_bits + 20

    def test_echo_cost_scales_with_entries(self, size_model):
        one = EchoMessage(view=((1, "0" * 20),)).bits(size_model)
        three = EchoMessage(view=((1, "0" * 20), (2, "0" * 20), (3, "0" * 20))).bits(size_model)
        assert three - one == 2 * (size_model.id_bits + 20)

    def test_relay_cost(self, size_model):
        msg = RelayMessage(committee_index=4, value="1" * 20)
        assert msg.bits(size_model) == size_model.kind_bits + size_model.id_bits + 20


class TestBaselineMessages:
    def test_query_is_cheap(self, size_model):
        assert QueryMessage().bits(size_model) == size_model.kind_bits
