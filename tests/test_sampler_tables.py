"""Tests for the precomputed sampler tables and the bounded LRU cache.

The eviction tests are a regression guard for the old behaviour where a full
cache was *cleared wholesale* on overflow, thrashing mid-run: eviction must
be incremental (one coldest entry at a time) and must never drop entries in
active use.
"""

from __future__ import annotations

import pytest

from repro.samplers.base import SamplerSpec
from repro.samplers.hash_sampler import QuorumSampler
from repro.samplers.poll_sampler import PollSampler
from repro.samplers.tables import LRUCache, PollEntry, QuorumTable

SPEC = SamplerSpec(n=48, quorum_size=9, label_space=48 * 48, seed=5)


class TestLRUCache:
    def test_capacity_is_enforced(self):
        cache = LRUCache(capacity=3)
        for i in range(10):
            cache.put(i, str(i))
        assert len(cache) == 3

    def test_eviction_is_incremental_not_clear_all(self):
        # Regression: overflowing by one must evict exactly one entry.
        cache = LRUCache(capacity=3)
        for i in range(3):
            cache.put(i, str(i))
        cache.put(3, "3")
        assert len(cache) == 3
        assert cache.evictions == 1
        assert 0 not in cache  # the coldest entry went
        assert all(i in cache for i in (1, 2, 3))  # everything else survived

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "a" becomes most-recently-used
        cache.put("c", 3)
        assert "a" in cache  # survived because it was touched
        assert "b" not in cache  # "b" was the coldest

    def test_get_or_create_only_calls_factory_on_miss(self):
        cache = LRUCache(capacity=4)
        calls = []

        def factory(key):
            calls.append(key)
            return key * 2

        assert cache.get_or_create(3, factory) == 6
        assert cache.get_or_create(3, factory) == 6
        assert calls == [3]
        assert cache.hits == 1 and cache.misses == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestQuorumTable:
    def setup_method(self):
        self.sampler = QuorumSampler(SPEC, name="T")

    def test_table_matches_sampler_api(self):
        table = self.sampler.table("s")
        for x in range(SPEC.n):
            quorum = self.sampler.quorum("s", x)
            assert table.quorum(x) == quorum
            assert table.members(x) == frozenset(quorum)
            assert table.threshold(x) == len(quorum) // 2 + 1
            assert all(table.contains(x, member) for member in quorum)
            outsider = next(i for i in range(SPEC.n) if i not in quorum)
            assert not table.contains(x, outsider)

    def test_inverse_triggers_one_pass_full_build(self):
        table = self.sampler.table("s")
        assert not table.fully_built
        inverse = table.inverse_of(0)
        assert table.fully_built
        for x in inverse:
            assert table.contains(x, 0)
        # total memberships equal n quorums of d members each
        total = sum(len(table.inverse_of(y)) for y in range(SPEC.n))
        assert total == SPEC.n * SPEC.quorum_size


class TestQuorumSamplerEviction:
    def test_eviction_keeps_recent_strings(self):
        # Regression for the old clear-all eviction: with capacity 2, touching
        # a third string must evict only the coldest one.
        sampler = QuorumSampler(SPEC, name="I", max_cached_strings=2)
        quorum_a = sampler.quorum("a", 0)
        sampler.quorum("b", 0)
        sampler.quorum("a", 1)  # refresh "a"
        sampler.quorum("c", 0)  # evicts "b", the coldest
        cache = sampler.cache_info
        assert len(cache) == 2
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_results_identical_after_eviction(self):
        sampler = QuorumSampler(SPEC, name="I", max_cached_strings=1)
        before = {x: sampler.quorum("s1", x) for x in range(8)}
        sampler.quorum("s2", 0)  # evicts the s1 table
        after = {x: sampler.quorum("s1", x) for x in range(8)}
        assert before == after

    def test_hot_memo_does_not_leak_across_strings(self):
        sampler = QuorumSampler(SPEC, name="I", max_cached_strings=4)
        q1 = sampler.quorum("s1", 3)
        q2 = sampler.quorum("s2", 3)
        assert sampler.quorum("s1", 3) == q1
        assert sampler.quorum("s2", 3) == q2
        assert q1 != q2  # (w.h.p. for distinct strings)


class TestPollSamplerEntries:
    def setup_method(self):
        self.sampler = PollSampler(SPEC)

    def test_entry_matches_poll_list(self):
        entry = self.sampler.entry(3, 17)
        assert entry.members == self.sampler.poll_list(3, 17)
        assert entry.member_set == frozenset(entry.members)
        assert entry.threshold == len(entry.members) // 2 + 1

    def test_contains_and_threshold_consistency(self):
        members = self.sampler.poll_list(1, 2)
        assert all(self.sampler.contains(1, 2, member) for member in members)
        outsider = next(i for i in range(SPEC.n) if i not in members)
        assert not self.sampler.contains(1, 2, outsider)
        assert self.sampler.threshold(1, 2) == self.sampler.majority_threshold(1, 2)

    def test_hot_memo_alternation(self):
        a = self.sampler.poll_list(0, 1)
        b = self.sampler.poll_list(0, 2)
        assert self.sampler.poll_list(0, 1) == a
        assert self.sampler.poll_list(0, 2) == b

    def test_bounded_eviction(self):
        sampler = PollSampler(SPEC, max_cached_entries=4)
        lists = {r: sampler.poll_list(0, r) for r in range(10)}
        assert len(sampler.cache_info) == 4
        # evicted entries recompute identically
        assert all(sampler.poll_list(0, r) == lists[r] for r in range(10))

    def test_label_out_of_range_still_rejected(self):
        with pytest.raises(ValueError):
            self.sampler.entry(0, SPEC.label_space)


class TestPollEntry:
    def test_slots_and_fields(self):
        entry = PollEntry((1, 2, 3))
        assert entry.members == (1, 2, 3)
        assert entry.member_set == frozenset((1, 2, 3))
        assert entry.threshold == 2
