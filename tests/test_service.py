"""Experiment-service subsystem: job manager, coalescing, streaming, HTTP app.

The :class:`~repro.service.jobs.JobManager` half is framework-free and fully
tested here without the ``[service]`` extra; the FastAPI layer is exercised
only when fastapi is importable (the main CI test job runs without it — the
import guard itself is part of the contract) and e2e by the CI service-smoke
job.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.plan import ExperimentPlan
from repro.experiments.sweep import RUN_COUNTER
from repro.service import JobManager, fastapi_available
from repro.service.jobs import DONE, FAILED
from repro.store import ResultStore


@pytest.fixture(autouse=True)
def _pinned_fingerprint(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "service-test-fp")


@pytest.fixture()
def store(tmp_path):
    with ResultStore(str(tmp_path / "store.sqlite")) as s:
        yield s


@pytest.fixture()
def manager(store):
    with JobManager(store=store, jobs=1) as mgr:
        yield mgr


PLAN = ExperimentPlan(ns=(24,), seeds=(3, 4))


class TestJobManager:
    def test_submit_poll_and_finish(self, manager):
        job, coalesced = manager.submit(PLAN)
        assert not coalesced and job.total == 2
        finished = manager.wait(job.id, timeout=60)
        assert finished.status == DONE
        progress = finished.progress()
        assert progress["done"] == progress["total"] == 2
        assert progress["error"] is None

    def test_streaming_yields_every_record_in_completion_order(self, manager):
        job, _ = manager.submit(PLAN)
        streamed = list(manager.iter_records(job.id))
        assert [index for index, _, _ in streamed] == [0, 1]
        assert all(not served for _, _, served in streamed)
        assert [record.spec.seed for _, record, _ in streamed] == [3, 4]
        # a late consumer (job already done) still gets the full stream
        assert len(list(manager.iter_records(job.id))) == 2
        # ?start=N resumes mid-stream
        assert len(list(manager.iter_records(job.id, start=1))) == 1

    def test_identical_inflight_submissions_coalesce(self, manager):
        job_a, first = manager.submit(PLAN)
        job_b, second = manager.submit(PLAN)
        assert not first and second
        assert job_a.id == job_b.id and job_a.submissions == 2
        # an equivalent spelling of the same plan coalesces too
        job_c, third = manager.submit(ExperimentPlan(ns=[24], seeds=[3, 4]))
        assert third and job_c.id == job_a.id
        manager.wait(job_a.id, timeout=60)

    def test_resubmit_after_completion_serves_from_store(self, manager):
        job, _ = manager.submit(PLAN)
        manager.wait(job.id, timeout=60)
        executed_before = RUN_COUNTER["executed"]
        again, coalesced = manager.submit(PLAN)
        assert not coalesced and again.id != job.id
        manager.wait(again.id, timeout=60)
        assert RUN_COUNTER["executed"] == executed_before  # zero protocol runs
        assert again.served_from_store == again.total == 2
        assert [r.to_dict() for _, r, _ in sorted(again.records)] == [
            r.to_dict() for _, r, _ in sorted(job.records)
        ]

    def test_invalid_plan_is_rejected_at_submit(self, manager):
        with pytest.raises(ValueError, match="unknown trace mode"):
            manager.submit(ExperimentPlan(ns=(24,), trace="bogus"))

    def test_failing_job_reports_error_and_keeps_serving(self, manager, monkeypatch):
        import repro.experiments.sweep as sweep_mod

        def boom(self, **kwargs):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr(sweep_mod.SweepRunner, "run", boom)
        job, _ = manager.submit(PLAN)
        manager.wait(job.id, timeout=60)
        assert job.status == FAILED
        assert "worker exploded" in job.error
        monkeypatch.undo()
        ok, _ = manager.submit(ExperimentPlan(ns=(24,), seeds=(5,)))
        manager.wait(ok.id, timeout=60)
        assert ok.status == DONE

    def test_unknown_job_raises_key_error(self, manager):
        with pytest.raises(KeyError):
            manager.get("job-99999-nope")

    def test_close_is_idempotent_and_rejects_new_work(self, store):
        mgr = JobManager(store=store, jobs=1)
        job, _ = mgr.submit(ExperimentPlan(ns=(24,), seeds=(3,)))
        mgr.close()
        mgr.close()
        assert mgr.get(job.id).finished  # queued work drains before shutdown
        with pytest.raises(RuntimeError, match="closed"):
            mgr.submit(PLAN)

    def test_manager_without_store_still_runs(self):
        with JobManager(store=None, jobs=1) as mgr:
            job, _ = mgr.submit(ExperimentPlan(ns=(24,), seeds=(3,)))
            mgr.wait(job.id, timeout=60)
            assert job.status == DONE and job.served_from_store == 0


# ----------------------------------------------------------------------
# import guard: the service package must work without fastapi
# ----------------------------------------------------------------------
def test_create_app_guard_names_the_extra(monkeypatch):
    if fastapi_available():
        pytest.skip("fastapi installed; the missing-dependency path is moot")
    from repro.service import create_app

    with pytest.raises(RuntimeError, match=r"\[service\] extra"):
        create_app()


def test_serve_cli_fails_cleanly_without_fastapi(capsys):
    if fastapi_available():
        pytest.skip("fastapi installed; the missing-dependency path is moot")
    from repro.experiments.cli import main as cli_main

    assert cli_main(["serve"]) == 2
    assert "[service]" in capsys.readouterr().err


# ----------------------------------------------------------------------
# HTTP layer (runs only with the [service] extra installed)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not fastapi_available(), reason="needs the [service] extra")
class TestHTTPApp:
    @pytest.fixture()
    def client(self, manager):
        from fastapi.testclient import TestClient

        from repro.service import create_app

        app = create_app(manager=manager)
        with TestClient(app) as client:
            yield client

    def test_submit_poll_stream_and_cached_resubmit(self, client):
        payload = PLAN.to_dict()
        submitted = client.post("/plans", json=payload).json()
        job_id = submitted["job_id"]
        assert submitted["total"] == 2

        lines = [
            json.loads(line)
            for line in client.get(f"/jobs/{job_id}/records").text.splitlines()
        ]
        assert len(lines) == 2
        assert {line["record"]["spec"]["seed"] for line in lines} == {3, 4}

        progress = client.get(f"/jobs/{job_id}").json()
        assert progress["status"] == "done" and progress["done"] == 2

        again = client.post("/plans", json=payload).json()
        result = client.get(f"/jobs/{again['job_id']}/result")
        while result.status_code == 409:
            result = client.get(f"/jobs/{again['job_id']}/result")
        assert result.json()["served_from_store"] == 2

    def test_store_endpoints_and_errors(self, client):
        assert client.get("/healthz").json()["status"] == "ok"
        assert client.get("/store/stats").json()["schema_version"] >= 1
        assert client.get("/jobs/nope").status_code == 404
        assert client.post("/plans", json={"ns": [24], "bogus": 1}).status_code == 422
