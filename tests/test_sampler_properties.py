"""Tests for the sampler property checkers and the Section 4.1 digraph model."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.samplers.base import SamplerSpec
from repro.samplers.hash_sampler import QuorumSampler
from repro.samplers.poll_sampler import PollSampler
from repro.samplers.properties import (
    border_size,
    check_no_overload,
    estimate_minority_fraction,
    estimate_sampler_deviation,
    max_overload_ratio,
    overload_counts,
    property2_holds,
    worst_family_border_ratio,
)
from repro.samplers.random_graph import (
    LabelledDigraph,
    estimate_border_probability,
    random_family,
)

SPEC = SamplerSpec(n=48, quorum_size=9, label_space=48 * 48, seed=5)


@pytest.fixture(scope="module")
def push_sampler():
    return QuorumSampler(SPEC, name="I")


@pytest.fixture(scope="module")
def poll_sampler():
    return PollSampler(SPEC)


class TestOverload:
    def test_counts_sum_to_n_times_d(self, push_sampler):
        counts = overload_counts(push_sampler, "s")
        assert sum(counts.values()) == SPEC.n * SPEC.quorum_size

    def test_no_overload_for_reasonable_factor(self, push_sampler):
        # Lemma 1: a constant factor exists; factor 4 holds comfortably at this size.
        assert check_no_overload(push_sampler, "gstring-like", factor=4.0)

    def test_overload_detected_with_tiny_factor(self, push_sampler):
        assert not check_no_overload(push_sampler, "s", factor=0.5)

    def test_max_overload_ratio_between_one_and_factor(self, push_sampler):
        ratio = max_overload_ratio(push_sampler, ["a", "b", "c"])
        assert 1.0 <= ratio <= 4.0


class TestDeviation:
    def test_empty_strings_give_zero(self, push_sampler):
        assert estimate_sampler_deviation(push_sampler, {1, 2}, [], theta=0.1) == 0.0

    def test_small_bad_set_rarely_overrepresented(self, push_sampler):
        bad = set(range(8))  # 1/6 of the nodes
        deviation = estimate_sampler_deviation(push_sampler, bad, ["x", "y"], theta=0.34)
        assert deviation < 0.05

    def test_full_bad_set_always_overrepresented_is_impossible(self, push_sampler):
        # if every node is bad, no quorum can over-represent it beyond base + theta
        bad = set(range(SPEC.n))
        assert estimate_sampler_deviation(push_sampler, bad, ["x"], theta=0.01) == 0.0

    def test_larger_theta_means_fewer_violations(self, push_sampler):
        bad = set(range(16))
        loose = estimate_sampler_deviation(push_sampler, bad, ["x", "y", "z"], theta=0.4)
        tight = estimate_sampler_deviation(push_sampler, bad, ["x", "y", "z"], theta=0.05)
        assert loose <= tight


class TestProperty1:
    def test_good_majority_almost_everywhere(self, poll_sampler):
        rng = random.Random(0)
        good = set(range(36))  # 75% good nodes
        fraction = estimate_minority_fraction(poll_sampler, good, samples=400, rng=rng)
        assert fraction < 0.05

    def test_bad_majority_when_good_set_small(self, poll_sampler):
        rng = random.Random(0)
        good = set(range(10))  # only ~20% good
        fraction = estimate_minority_fraction(poll_sampler, good, samples=200, rng=rng)
        assert fraction > 0.9

    def test_zero_samples(self, poll_sampler):
        assert estimate_minority_fraction(poll_sampler, set(), samples=0, rng=random.Random(0)) == 0.0


class TestProperty2:
    def test_border_size_empty_family(self, poll_sampler):
        assert border_size(poll_sampler, []) == 0

    def test_border_counts_edges_leaving_family(self, poll_sampler):
        family = [(0, 1), (1, 2)]
        border = border_size(poll_sampler, family)
        assert 0 <= border <= 2 * poll_sampler.list_size

    def test_property2_trivially_true_for_empty_family(self, poll_sampler):
        assert property2_holds(poll_sampler, [])

    def test_property2_rejects_duplicate_nodes(self, poll_sampler):
        with pytest.raises(ValueError):
            property2_holds(poll_sampler, [(0, 1), (0, 2)])

    def test_property2_holds_for_random_small_families(self, poll_sampler):
        rng = random.Random(1)
        for _ in range(20):
            size = rng.randint(1, SPEC.n // 6)
            nodes = rng.sample(range(SPEC.n), size)
            family = [(x, rng.randrange(SPEC.label_space)) for x in nodes]
            assert property2_holds(poll_sampler, family)

    def test_worst_family_ratio_random_exceeds_two_thirds(self, poll_sampler):
        rng = random.Random(2)
        ratio = worst_family_border_ratio(poll_sampler, family_size=6, trials=10, rng=rng, greedy=False)
        assert ratio > 2 / 3

    def test_worst_family_ratio_greedy_still_exceeds_two_thirds(self, poll_sampler):
        rng = random.Random(3)
        ratio = worst_family_border_ratio(poll_sampler, family_size=6, trials=3, rng=rng, greedy=True)
        assert ratio > 2 / 3

    def test_worst_family_ratio_zero_size(self, poll_sampler):
        assert worst_family_border_ratio(poll_sampler, 0, 3, random.Random(0)) == 1.0


class TestRandomDigraph:
    def test_out_neighbours_count_with_multiplicity(self):
        graph = LabelledDigraph(n=20, d=7, label_space=100, rng=random.Random(0))
        assert len(graph.out_neighbours(3, 5)) == 7

    def test_out_neighbours_cached(self):
        graph = LabelledDigraph(n=20, d=7, label_space=100, rng=random.Random(0))
        assert graph.out_neighbours(3, 5) == graph.out_neighbours(3, 5)

    def test_border_of_singleton_family(self):
        graph = LabelledDigraph(n=20, d=7, label_space=100, rng=random.Random(1))
        family = [(4, 9)]
        border = graph.border(family)
        # only edges back to node 4 itself stay inside the family
        self_loops = sum(1 for y in graph.out_neighbours(4, 9) if y == 4)
        assert border == 7 - self_loops

    def test_expansion_ratio_empty(self):
        graph = LabelledDigraph(n=10, d=3, label_space=10, rng=random.Random(0))
        assert graph.expansion_ratio([]) == 1.0

    def test_random_family_has_distinct_nodes(self):
        family = random_family(30, 100, 10, random.Random(0))
        nodes = [x for x, _ in family]
        assert len(set(nodes)) == len(nodes) == 10

    def test_estimate_border_probability_shape(self):
        failures = estimate_border_probability(n=64, trials=20, seed=1)
        assert failures
        assert all(0.0 <= p <= 1.0 for p in failures.values())

    def test_estimate_border_probability_is_near_zero(self):
        # The paper's bound is o(2^-n); Monte-Carlo should see no failures at all.
        failures = estimate_border_probability(n=64, trials=30, seed=2)
        assert max(failures.values()) == 0.0

    @given(st.integers(min_value=8, max_value=40), st.integers(min_value=1, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_hypothesis_border_bounded_by_total_degree(self, n, size):
        rng = random.Random(n * 31 + size)
        graph = LabelledDigraph(n=n, d=5, label_space=50, rng=rng)
        family = random_family(n, 50, min(size, n), rng)
        assert 0 <= graph.border(family) <= 5 * len(family)
