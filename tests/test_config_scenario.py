"""Tests for the AER configuration and scenario construction."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import AERConfig
from repro.core.scenario import AERScenario, build_aer_nodes, make_scenario


class TestAERConfig:
    def test_for_system_defaults(self):
        config = AERConfig.for_system(128)
        assert config.n == 128
        assert config.quorum_size % 2 == 1
        assert config.string_length == 4 * 7
        assert config.label_space == 128 * 128
        assert config.answer_budget == 49

    def test_quorum_multiplier_scales_quorums(self):
        small = AERConfig.for_system(128, quorum_multiplier=1.0)
        big = AERConfig.for_system(128, quorum_multiplier=3.0)
        assert big.quorum_size > small.quorum_size

    def test_with_replaces_fields(self):
        config = AERConfig.for_system(64)
        changed = config.with_(answer_budget=99)
        assert changed.answer_budget == 99
        assert changed.n == config.n
        assert config.answer_budget != 99  # original untouched (frozen)

    def test_max_byzantine_below_third(self):
        config = AERConfig.for_system(90)
        assert config.max_byzantine() < 30

    def test_sampler_spec_matches_config(self):
        config = AERConfig.for_system(64, sampler_seed=9)
        spec = config.sampler_spec()
        assert spec.n == 64
        assert spec.seed == 9
        assert spec.quorum_size == config.quorum_size

    def test_build_samplers_names(self):
        suite = AERConfig.for_system(32).build_samplers()
        assert suite.push.name == "I"
        assert suite.pull.name == "H"
        assert suite.poll.name == "J"

    def test_size_model_label_space(self):
        config = AERConfig.for_system(32)
        assert config.size_model().label_space == config.label_space

    def test_same_seed_same_samplers(self):
        a = AERConfig.for_system(48, sampler_seed=1).build_samplers()
        b = AERConfig.for_system(48, sampler_seed=1).build_samplers()
        assert a.push.quorum("s", 0) == b.push.quorum("s", 0)
        assert a.poll.poll_list(0, 5) == b.poll.poll_list(0, 5)

    def test_different_seed_different_samplers(self):
        a = AERConfig.for_system(48, sampler_seed=1).build_samplers()
        b = AERConfig.for_system(48, sampler_seed=2).build_samplers()
        assert a.push.quorum("s", 0) != b.push.quorum("s", 0)


class TestMakeScenario:
    def test_partition_is_complete(self):
        scenario = make_scenario(60, seed=0)
        assert len(scenario.correct_ids) + len(scenario.byzantine_ids) == 60

    def test_default_byzantine_count(self):
        scenario = make_scenario(60, seed=0)
        assert len(scenario.byzantine_ids) == 15  # n // 4 default

    def test_explicit_t(self):
        scenario = make_scenario(60, t=6, seed=0)
        assert len(scenario.byzantine_ids) == 6

    def test_knowledge_fraction_met(self):
        scenario = make_scenario(64, t=10, knowledge_fraction=0.7, seed=1)
        assert scenario.knowledge_fraction_of_all > 0.5
        assert len(scenario.knowledgeable_ids) >= int(0.7 * 64)

    def test_gstring_length_matches_config(self):
        config = AERConfig.for_system(64)
        scenario = make_scenario(64, config=config, seed=2)
        assert len(scenario.gstring) == config.string_length

    def test_explicit_gstring_used(self):
        gstring = "1" * AERConfig.for_system(32).string_length
        scenario = make_scenario(32, gstring=gstring, seed=3)
        assert scenario.gstring == gstring

    def test_explicit_byzantine_ids(self):
        scenario = make_scenario(32, t=4, byzantine_ids=[0, 1, 2, 3], seed=0)
        assert scenario.byzantine_ids == frozenset({0, 1, 2, 3})
        assert 0 not in scenario.candidates

    def test_byzantine_ids_without_t_derives_t(self):
        # t must come from the explicit corrupt set, not the n // 4 default
        scenario = make_scenario(32, byzantine_ids=[1, 2, 3], seed=0)
        assert scenario.byzantine_ids == frozenset({1, 2, 3})
        assert len(scenario.correct_ids) == 29

    def test_byzantine_ids_conflicting_t_rejected(self):
        with pytest.raises(ValueError, match="conflict"):
            make_scenario(32, t=5, byzantine_ids=[0, 1, 2], seed=0)

    def test_byzantine_ids_conflicting_with_default_sized_t_rejected(self):
        # t == n // 4 used to slip through an escape hatch in the check
        with pytest.raises(ValueError, match="conflict"):
            make_scenario(32, t=8, byzantine_ids=[0, 1, 2], seed=0)

    def test_wrong_candidate_default_mode(self):
        scenario = make_scenario(64, wrong_candidate_mode="default", seed=4)
        non_knowing = [
            s for i, s in scenario.candidates.items() if s != scenario.gstring
        ]
        assert all(set(s) == {"0"} for s in non_knowing)

    def test_wrong_candidate_common_mode(self):
        scenario = make_scenario(64, wrong_candidate_mode="common_wrong", seed=4)
        non_knowing = {
            s for s in scenario.candidates.values() if s != scenario.gstring
        }
        assert len(non_knowing) <= 1

    def test_wrong_candidate_random_mode(self):
        scenario = make_scenario(64, t=8, knowledge_fraction=0.6, wrong_candidate_mode="random", seed=4)
        non_knowing = [s for s in scenario.candidates.values() if s != scenario.gstring]
        assert len(set(non_knowing)) > 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_scenario(32, wrong_candidate_mode="bogus", seed=0)

    def test_t_too_large_rejected(self):
        with pytest.raises(ValueError):
            make_scenario(32, t=32, seed=0)

    def test_impossible_knowledge_rejected(self):
        # half the nodes are Byzantine: a >1/2 knowledgeable fraction is impossible
        with pytest.raises(ValueError):
            make_scenario(32, t=16, knowledge_fraction=0.9, seed=0)

    def test_deterministic_given_seed(self):
        a = make_scenario(48, seed=7)
        b = make_scenario(48, seed=7)
        assert a.gstring == b.gstring
        assert a.byzantine_ids == b.byzantine_ids
        assert a.candidates == b.candidates

    def test_different_seeds_differ(self):
        assert make_scenario(48, seed=1).gstring != make_scenario(48, seed=2).gstring

    @given(st.integers(min_value=24, max_value=96), st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_hypothesis_validation_always_passes_for_defaults(self, n, seed):
        scenario = make_scenario(n, t=n // 6, knowledge_fraction=0.7, seed=seed)
        scenario.validate()  # must not raise
        assert scenario.knowledge_fraction_of_all > 0.5


class TestScenarioValidation:
    def test_overlap_rejected(self):
        scenario = AERScenario(
            n=4, gstring="01", byzantine_ids=frozenset({0}), candidates={0: "01", 1: "01", 2: "01", 3: "01"}
        )
        with pytest.raises(ValueError):
            scenario.validate()

    def test_incomplete_partition_rejected(self):
        scenario = AERScenario(
            n=4, gstring="01", byzantine_ids=frozenset({0}), candidates={1: "01", 2: "01"}
        )
        with pytest.raises(ValueError):
            scenario.validate()

    def test_insufficient_knowledge_rejected(self):
        scenario = AERScenario(
            n=4,
            gstring="01",
            byzantine_ids=frozenset({0}),
            candidates={1: "01", 2: "00", 3: "00"},
        )
        with pytest.raises(ValueError):
            scenario.validate()


class TestBuildNodes:
    def test_one_node_per_correct_id(self, small_scenario, small_config):
        nodes = build_aer_nodes(small_scenario, small_config)
        assert [node.node_id for node in nodes] == small_scenario.correct_ids

    def test_nodes_share_sampler_suite(self, small_scenario, small_config):
        nodes = build_aer_nodes(small_scenario, small_config)
        suites = {id(node.samplers) for node in nodes}
        assert len(suites) == 1

    def test_initial_candidates_match_scenario(self, small_scenario, small_config):
        nodes = build_aer_nodes(small_scenario, small_config)
        for node in nodes:
            assert node.initial_candidate == small_scenario.candidates[node.node_id]
