"""Tests for the trace subsystem (repro.trace).

The load-bearing guarantees:

* **disabled tracing is free and invisible** — a spec with ``trace="off"``
  takes exactly the plain-runner code path (the golden engine tests pin the
  bytes; here we pin the equivalence explicitly), and *enabled* tracing
  never perturbs results either, because probes touch no RNG and no
  message flow;
* **summaries are data** — ``TraceSummary`` round-trips through the sweep
  subsystem's JSON persistence unchanged;
* **probes are typed** — unknown probe names and undeclared fields are
  rejected at the emission site;
* **full mode streams JSONL** — one parseable file per spec key under
  ``$REPRO_TRACE_DIR``.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.experiments.sweep import SweepResult, SweepRunner
from repro.runner import run_aer_experiment
from repro.trace import ProbePoint, TraceCollector, TraceSummary, register_probe
from repro.trace.collector import collector_for_spec


class TestDisabledPathEquivalence:
    """trace='off' is byte-identical to the plain runner; tracing never perturbs."""

    CASES = [
        dict(n=32, adversary="none", mode="sync", seed=0),
        dict(n=32, adversary="quorum_flood", mode="sync", seed=2),
        dict(n=24, adversary="cornering", mode="async", seed=1),
    ]

    METRIC_FIELDS = (
        "agreement", "decided_count", "correct_count", "rounds", "span",
        "max_decision_time", "total_messages", "total_bits", "amortized_bits",
        "max_node_bits", "median_node_bits", "load_imbalance",
    )

    @pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c['mode']}:{c['adversary']}")
    def test_trace_off_matches_plain_runner(self, case):
        plain = run_aer_experiment(
            case["n"], adversary_name=case["adversary"], mode=case["mode"], seed=case["seed"]
        )
        spec_result = ExperimentSpec(
            n=case["n"], adversary=case["adversary"], mode=case["mode"],
            seed=case["seed"], trace="off",
        ).run()
        assert spec_result.trace is None
        assert spec_result.rounds == plain.rounds
        assert spec_result.span == plain.span
        assert spec_result.total_messages == plain.metrics_all.total_messages
        assert spec_result.total_bits == plain.metrics_all.total_bits
        assert spec_result.max_node_bits == plain.metrics.max_node_bits
        assert spec_result.agreement == plain.agreement_reached
        assert spec_result.decided_count == len(plain.decisions)

    @pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c['mode']}:{c['adversary']}")
    def test_enabling_tracing_does_not_perturb_results(self, case):
        off = ExperimentSpec(trace="off", **case).run()
        on = ExperimentSpec(trace="summary", **case).run()
        for field in self.METRIC_FIELDS:
            assert getattr(off, field) == getattr(on, field), field
        assert on.trace is not None
        assert on.trace["mode"] == "summary"

    def test_trace_totals_match_metrics(self):
        result = ExperimentSpec(n=32, adversary="silent", seed=1, trace="summary").run()
        kinds = result.trace["message_kinds"]
        byz = result.trace["byzantine_message_kinds"]
        traced_messages = sum(v["messages"] for v in kinds.values()) + sum(
            v["messages"] for v in byz.values()
        )
        traced_bits = sum(v["bits"] for v in kinds.values()) + sum(
            v["bits"] for v in byz.values()
        )
        assert traced_messages == result.total_messages
        assert traced_bits == result.total_bits


class TestSweepRoundTrip:
    """TraceSummary blocks survive SweepRunner persistence byte-for-byte."""

    def test_summary_round_trips_through_sweep_json(self, tmp_path):
        plan = ExperimentPlan(
            ns=(24,), adversaries=("none", "wrong_answer"), seeds=(0,), trace="summary"
        )
        sweep = SweepRunner(plan, jobs=1).run()
        assert all(record.trace is not None for record in sweep.records)

        path = tmp_path / "sweep.json"
        sweep.save(str(path))
        loaded = SweepResult.load(str(path))
        for original, reloaded in zip(sweep.records, loaded.records):
            assert reloaded.spec.trace == "summary"
            assert reloaded.trace == original.trace

    def test_untraced_records_have_no_trace_block(self, tmp_path):
        plan = ExperimentPlan(ns=(24,), seeds=(0,))
        sweep = SweepRunner(plan, jobs=1).run()
        path = tmp_path / "sweep.json"
        sweep.save(str(path))
        loaded = SweepResult.load(str(path))
        assert all(record.trace is None for record in loaded.records)

    def test_old_sweep_json_without_trace_key_loads(self, tmp_path):
        plan = ExperimentPlan(ns=(24,), seeds=(0,))
        sweep = SweepRunner(plan, jobs=1).run()
        data = sweep.to_dict()
        for record in data["records"]:
            record.pop("trace")          # a pre-trace-subsystem sweep file
            record["spec"].pop("trace")
        path = tmp_path / "old.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        loaded = SweepResult.load(str(path))
        assert loaded.records[0].trace is None
        assert loaded.records[0].spec.trace == "off"

    def test_summary_dataclass_round_trip(self):
        result = ExperimentSpec(n=24, seed=3, trace="summary").run()
        summary = TraceSummary.from_dict(result.trace)
        assert summary.to_dict() == result.trace


class TestProbeValidation:
    """The probe registry rejects typos loudly."""

    def test_unknown_probe_name_rejected(self):
        collector = TraceCollector(mode="summary")
        with pytest.raises(ValueError, match="unknown probe point 'bogus_probe'"):
            collector.emit("bogus_probe", node=1)

    def test_undeclared_field_rejected(self):
        collector = TraceCollector(mode="summary")
        with pytest.raises(ValueError, match="does not declare field"):
            collector.emit("push_ignored", node=1, giraffe=2)

    def test_registered_extension_probe_accepted(self):
        register_probe(ProbePoint("test_only_probe", "test", ("node",)), replace=True)
        collector = TraceCollector(mode="summary")
        collector.emit("test_only_probe", node=7)
        assert collector.summary().events["test_only_probe"] == 1

    def test_emit_of_builtin_probe_feeds_specialized_accounting(self):
        # emit() and the dedicated methods are two spellings of one probe:
        # the summary blocks derived from per-node state must agree.
        collector = TraceCollector(mode="summary")
        collector.bind_population([1, 5], [])
        collector.emit("budget_exhausted", node=5)
        collector.emit("message_dispatched", sender=1, kind="push", count=2, bits=10)
        collector.emit("node_decided", node=5, time=3.0)
        summary = collector.summary()
        assert summary.polls["budget_exhausted_nodes"] == 1
        assert summary.message_kinds["push"] == {"messages": 2, "bits": 20}
        assert summary.polls["decided"] == 1

    def test_emit_of_builtin_probe_requires_declared_fields(self):
        collector = TraceCollector(mode="summary")
        with pytest.raises(ValueError, match="requires all of its declared"):
            collector.emit("budget_exhausted")

    def test_duplicate_probe_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_probe(ProbePoint("push_ignored", "dup", ()))

    def test_unknown_trace_mode_rejected_by_collector(self):
        with pytest.raises(ValueError, match="unknown trace mode"):
            TraceCollector(mode="everything")

    def test_unknown_trace_mode_rejected_by_spec(self):
        with pytest.raises(ValueError, match="unknown trace mode"):
            ExperimentSpec(n=24, trace="everything").validate()

    def test_unsupported_protocol_rejects_tracing(self):
        spec = ExperimentSpec(n=24, protocol="sampler_border", trace="summary")
        with pytest.raises(ValueError, match="does not support tracing"):
            spec.validate()


class TestFullMode:
    """trace='full' streams per-event JSONL for offline analysis."""

    def test_jsonl_smoke(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        spec = ExperimentSpec(n=24, adversary="silent", seed=0, trace="full")
        result = spec.run()
        assert result.trace["mode"] == "full"
        assert result.trace["full"]["events_captured"] > 0

        jsonl_path = result.trace["full"]["jsonl_path"]
        assert jsonl_path is not None and str(tmp_path) in jsonl_path
        lines = [
            json.loads(line)
            for line in open(jsonl_path, encoding="utf-8")
            if line.strip()
        ]
        assert len(lines) == result.trace["full"]["events_captured"]
        assert all("probe" in event and "t" in event for event in lines)
        probes_seen = {event["probe"] for event in lines}
        assert "message_dispatched" in probes_seen
        assert "node_decided" in probes_seen

    def test_same_key_specs_get_distinct_jsonl_files(self, tmp_path, monkeypatch):
        # Specs that share a key but differ in params (the answer-budget
        # ablation's shape) must not overwrite each other's streams.
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        specs = [
            ExperimentSpec(
                n=24, adversary="silent", seed=0, trace="full",
                params={"answer_budget": budget},
            )
            for budget in (2, 10_000)
        ]
        assert specs[0].key == specs[1].key
        paths = {spec.run().trace["full"]["jsonl_path"] for spec in specs}
        assert len(paths) == 2
        assert all(p is not None for p in paths)

    def test_full_without_dir_buffers_in_memory(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        result = ExperimentSpec(n=24, seed=0, trace="full").run()
        assert result.trace["full"]["jsonl_path"] is None
        assert result.trace["full"]["events_captured"] > 0

    def test_full_and_summary_agree_on_aggregates(self):
        summary = ExperimentSpec(n=24, seed=1, trace="summary").run().trace
        full = ExperimentSpec(n=24, seed=1, trace="full").run().trace
        assert summary["events"] == full["events"]
        assert summary["message_kinds"] == full["message_kinds"]
        assert summary["push"] == full["push"]

    def test_buffer_cap_counts_dropped_events(self):
        collector = TraceCollector(mode="full", max_buffered_events=3)
        for i in range(10):
            collector.phase_started(i, "push")
        assert len(collector.events) == 3
        summary = collector.summary()
        assert summary.full["events_captured"] == 10
        assert summary.full["events_dropped"] == 7


class TestCollectorForSpec:
    def test_off_returns_none(self):
        assert collector_for_spec(ExperimentSpec(n=8)) is None

    def test_summary_builds_collector_without_sink(self):
        collector = collector_for_spec(ExperimentSpec(n=8, trace="summary"))
        assert collector is not None and collector.jsonl_path is None
        collector.close()


class TestMultiStageTrace:
    def test_full_ba_merges_both_stages(self):
        result = ExperimentSpec(n=32, protocol="full_ba", seed=0, trace="summary").run()
        trace = result.trace
        # stage-1 committee traffic and stage-2 AER traffic both present
        assert trace["message_kinds"]["push"]["messages"] > 0
        assert trace["events"]["poll_started"] > 0
        # kernel-level totals cover both stages
        kinds = trace["message_kinds"]
        byz = trace["byzantine_message_kinds"]
        total = sum(v["messages"] for v in kinds.values()) + sum(
            v["messages"] for v in byz.values()
        )
        assert total == result.total_messages

    def test_baseline_kernel_level_trace(self):
        result = ExperimentSpec(
            n=32, protocol="sample_majority", seed=0, trace="summary"
        ).run()
        trace = result.trace
        assert trace["candidates"] is None  # no candidate lists in the baseline
        assert trace["events"]["poll_answered"] > 0
        assert trace["message_kinds"]["query"]["messages"] > 0
