"""Tests for the composed BA protocol and the Figure 1 baselines."""

from __future__ import annotations

import pytest

from repro.baselines.naive_broadcast import run_naive_broadcast
from repro.baselines.sample_majority import SampleMajorityConfig, run_sample_majority
from repro.baselines.composed_ba import run_composed_ba
from repro.core.ba import BAConfig, BAProtocol


class TestBAConfig:
    def test_default_byzantine_count(self):
        assert BAConfig(n=60).byzantine_count == 10

    def test_explicit_t(self):
        assert BAConfig(n=60, t=7).byzantine_count == 7


class TestBAProtocol:
    @pytest.fixture(scope="class")
    def ba_result(self):
        return BAProtocol(BAConfig(n=64, seed=3)).run()

    def test_agreement_reached(self, ba_result):
        assert ba_result.agreement_reached
        assert ba_result.decided_value == ba_result.gstring

    def test_knowledge_after_ae_exceeds_half(self, ba_result):
        assert ba_result.knowledge_fraction_after_ae > 0.5

    def test_combined_metrics_add_up(self, ba_result):
        assert ba_result.total_bits == (
            ba_result.ae_result.metrics.total_bits
            + ba_result.aer_result.metrics.total_bits
        )
        assert ba_result.amortized_bits == pytest.approx(ba_result.total_bits / 64)

    def test_total_rounds_combines_stages(self, ba_result):
        assert ba_result.total_rounds == (
            (ba_result.ae_result.rounds or 0) + (ba_result.aer_result.rounds or 0)
        )

    def test_max_node_bits_at_least_each_stage(self, ba_result):
        assert ba_result.max_node_bits >= ba_result.aer_result.metrics.max_node_bits

    def test_row_is_flat(self, ba_result):
        row = ba_result.row()
        assert row["n"] == 64
        assert row["agreement"] == 1

    def test_gstring_has_expected_length(self, ba_result):
        assert len(ba_result.gstring) == len(ba_result.scenario.gstring)

    def test_explicit_byzantine_ids_respected(self):
        byz = frozenset(range(8))
        result = BAProtocol(BAConfig(n=64, seed=4), byzantine_ids=byz).run()
        assert set(result.scenario.byzantine_ids) == set(byz)
        assert not set(result.aer_result.decisions) & byz

    def test_async_aer_stage(self):
        result = BAProtocol(BAConfig(n=48, seed=6, aer_mode="async")).run()
        assert result.aer_result.span is not None
        assert result.agreement_reached

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            BAProtocol(BAConfig(n=32, seed=1, aer_mode="warp")).run()

    def test_determinism(self):
        a = BAProtocol(BAConfig(n=48, seed=9)).run()
        b = BAProtocol(BAConfig(n=48, seed=9)).run()
        assert a.gstring == b.gstring
        assert a.total_bits == b.total_bits


class TestSampleMajorityBaseline:
    def test_config_sample_size_scales_with_sqrt(self):
        small = SampleMajorityConfig.for_system(64, string_length=24).sample_size
        big = SampleMajorityConfig.for_system(1024, string_length=40).sample_size
        assert big > small
        assert big < 1024  # sub-linear

    def test_agreement(self, small_scenario):
        result = run_sample_majority(small_scenario, seed=1)
        assert result.agreement_reached
        assert result.agreement_value() == small_scenario.gstring

    def test_load_balanced(self, small_scenario):
        result = run_sample_majority(small_scenario, seed=1)
        assert result.metrics.load_imbalance < 2.5

    def test_two_rounds(self, small_scenario):
        result = run_sample_majority(small_scenario, seed=1)
        assert result.rounds <= 3

    def test_reply_budget_limits_answers(self, small_scenario):
        config = SampleMajorityConfig(
            n=small_scenario.n, sample_size=5, reply_budget=1,
            string_length=len(small_scenario.gstring),
        )
        # With a crippled reply budget the protocol may fail, but it must not crash
        result = run_sample_majority(small_scenario, config=config, seed=1)
        assert result.n == small_scenario.n

    def test_determinism(self, small_scenario):
        a = run_sample_majority(small_scenario, seed=5)
        b = run_sample_majority(small_scenario, seed=5)
        assert a.metrics.total_bits == b.metrics.total_bits


class TestNaiveBroadcastBaseline:
    def test_agreement(self, small_scenario):
        result = run_naive_broadcast(small_scenario, seed=1)
        assert result.agreement_reached
        assert result.agreement_value() == small_scenario.gstring

    def test_quadratic_total_messages(self, small_scenario):
        result = run_naive_broadcast(small_scenario, seed=1)
        correct = len(small_scenario.correct_ids)
        assert result.metrics.total_messages == correct * (small_scenario.n - 1)

    def test_single_round(self, small_scenario):
        result = run_naive_broadcast(small_scenario, seed=1)
        assert result.rounds <= 2


class TestComposedBA:
    def test_sample_majority_composition(self):
        result = run_composed_ba(64, strategy="sample_majority", seed=2)
        assert result.agreement_reached
        assert result.total_rounds >= 2
        assert result.amortized_bits > 0

    def test_naive_composition(self):
        result = run_composed_ba(64, strategy="naive", seed=2)
        assert result.agreement_reached

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_composed_ba(32, strategy="bogus", seed=0)

    def test_naive_costs_more_than_sampled_at_scale(self):
        sampled = run_composed_ba(96, strategy="sample_majority", seed=3)
        naive = run_composed_ba(96, strategy="naive", seed=3)
        assert naive.everywhere_result.metrics.total_bits > (
            sampled.everywhere_result.metrics.total_bits
        ) * 0.8  # naive is at least in the same ballpark or worse

    def test_row_contents(self):
        result = run_composed_ba(48, strategy="naive", seed=1)
        row = result.row()
        assert row["n"] == 48
        assert set(row) >= {"agreement", "total_rounds", "amortized_bits", "max_node_bits"}
