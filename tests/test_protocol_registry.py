"""Tests for the protocol-registry API surface.

Covers the tentpole contract end to end: registry primitives, per-protocol
spec → JSON → worker → run round-trips, adversary/delay-policy/scenario
registry error paths, spec validation, the multi-protocol sweep + compare
flow, the CLI subcommands, and the ``repro.api`` facade.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.adversary.registry import ADVERSARIES
from repro.adversary.strategies import SilentAdversary
from repro.experiments import (
    ExperimentPlan,
    ExperimentRecord,
    ExperimentSpec,
    SweepResult,
    SweepRunner,
    execute_spec,
)
from repro.experiments.cli import main as cli_main
from repro.net.asynchronous import ConstantDelayPolicy, make_delay_policy
from repro.protocols import get_protocol, list_protocols
from repro.registry import Registry

SMALL_N = 24
SEED = 3

BUILTIN_PROTOCOLS = ("aer", "full_ba", "composed_ba", "sample_majority", "naive_broadcast")


class TestRegistryPrimitive:
    def test_register_get_and_names(self):
        reg = Registry("thing")
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert reg.names() == ["a"]
        assert "a" in reg and "b" not in reg

    def test_decorator_form(self):
        reg = Registry("thing")

        @reg.register("f")
        def f():
            return 7

        assert reg.get("f") is f

    def test_duplicate_rejected_unless_replace(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        reg.register("a", 2, replace=True)
        assert reg.get("a") == 2

    def test_unknown_lists_known_names(self):
        reg = Registry("gadget")
        reg.register("known", 1)
        with pytest.raises(ValueError, match="unknown gadget 'nope'.*known"):
            reg.get("nope")


class TestProtocolRoundTrips:
    """register → spec → JSON → worker entry point → run, per built-in protocol."""

    @pytest.mark.parametrize("protocol", BUILTIN_PROTOCOLS)
    def test_spec_json_run_roundtrip(self, protocol):
        spec = ExperimentSpec(n=SMALL_N, protocol=protocol, seed=SEED)
        # JSON round-trip survives intact (what the sweep persistence relies on)
        wire = json.loads(json.dumps(spec.to_dict()))
        assert ExperimentSpec.from_dict(wire) == spec
        # the worker entry point runs it and the record round-trips too
        record = execute_spec(spec)
        assert record.spec == spec
        assert record.agreement  # all built-ins agree on the benign small case
        assert record.total_bits > 0
        assert record.max_node_bits > 0
        assert ExperimentRecord.from_dict(json.loads(json.dumps(record.to_dict()))) == record
        assert record.row()["protocol"] == protocol

    def test_protocol_params_roundtrip(self):
        spec = ExperimentSpec(
            n=SMALL_N, protocol="composed_ba", seed=SEED, params={"strategy": "naive"}
        )
        assert spec.params_dict() == {"strategy": "naive"}
        restored = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        record = execute_spec(restored)
        assert record.extras["strategy"] == "naive"

    def test_aer_adapter_matches_plain_runner(self):
        from repro.runner import run_aer_experiment

        result = get_protocol("aer").run(
            ExperimentSpec(n=SMALL_N, adversary="silent", seed=SEED)
        )
        direct = run_aer_experiment(n=SMALL_N, adversary_name="silent", seed=SEED)
        assert result.total_bits == direct.metrics_all.total_bits
        assert result.rounds == direct.rounds
        assert result.max_node_bits == direct.metrics.max_node_bits
        assert result.agreement == direct.agreement_reached

    def test_run_result_normalizes_composition(self):
        result = api.run_experiment("full_ba", n=SMALL_N, seed=SEED)
        ba = result.raw
        assert result.rounds == ba.total_rounds
        assert result.max_node_bits == ba.max_node_bits
        assert result.amortized_bits == pytest.approx(ba.amortized_bits)
        assert 0.0 <= result.extras["knowledge_after_ae"] <= 1.0

    def test_custom_protocol_plugs_into_sweep(self):
        from repro.protocols import PROTOCOLS, ProtocolAdapter, RunResult, register_protocol

        @register_protocol
        class EchoProtocol(ProtocolAdapter):
            name = "echo_test"
            params = {"payload": 1}

            def run(self, spec):
                p = self.resolve_params(spec)
                return RunResult(
                    protocol=self.name, n=spec.n, agreement=True,
                    decided_count=spec.n, correct_count=spec.n,
                    rounds=1, span=None, max_decision_time=None,
                    total_messages=0, total_bits=int(p["payload"]),  # type: ignore[arg-type]
                    amortized_bits=0.0, max_node_bits=0,
                    median_node_bits=0.0, load_imbalance=1.0,
                )

        try:
            sweep = SweepRunner(
                ExperimentPlan(ns=(8,), protocols=("echo_test",), params={"payload": 9}),
                jobs=1,
            ).run()
            assert sweep.records[0].total_bits == 9
        finally:
            PROTOCOLS.unregister("echo_test")


class TestSpecValidation:
    def test_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol 'bogus'"):
            ExperimentSpec(n=SMALL_N, protocol="bogus").validate()

    def test_rushing_under_async_rejected(self):
        spec = ExperimentSpec(n=SMALL_N, mode="async", rushing=True)
        with pytest.raises(ValueError, match="rushing.*sync"):
            spec.validate()

    def test_unknown_param_names_the_key(self):
        spec = ExperimentSpec(n=SMALL_N, params={"frobnicate": 1})
        with pytest.raises(ValueError, match="frobnicate.*'aer'"):
            spec.validate()

    def test_knob_not_accepted_by_protocol(self):
        spec = ExperimentSpec(n=SMALL_N, protocol="composed_ba", adversary="silent")
        with pytest.raises(ValueError, match="'composed_ba' does not accept.*adversary"):
            spec.validate()

    def test_unsupported_mode(self):
        spec = ExperimentSpec(n=SMALL_N, protocol="naive_broadcast", mode="async")
        with pytest.raises(ValueError, match="does not support mode 'async'"):
            spec.validate()

    def test_delay_policy_under_sync_rejected(self):
        spec = ExperimentSpec(n=SMALL_N, params={"delay_policy": "constant"})
        with pytest.raises(ValueError, match="delay_policy.*async"):
            spec.validate()

    def test_from_dict_rejects_unknown_spec_key(self):
        with pytest.raises(ValueError, match="unknown experiment spec key.*bogus_key"):
            ExperimentSpec.from_dict({"n": SMALL_N, "bogus_key": 1})

    def test_from_dict_rejects_unknown_plan_key(self):
        with pytest.raises(ValueError, match="unknown experiment plan key.*bogus_key"):
            ExperimentPlan.from_dict({"ns": [SMALL_N], "bogus_key": 1})

    def test_async_only_plan_with_rushing_has_no_rushing_specs(self):
        # plan-level rushing only applies to sync specs; an async grid stays valid
        plan = ExperimentPlan(ns=(SMALL_N,), modes=("async",), rushing=True)
        assert all(not spec.rushing for spec in plan.specs())

    def test_mixed_mode_plan_with_rushing_stays_runnable(self):
        plan = ExperimentPlan(ns=(SMALL_N,), modes=("sync", "async"), rushing=True)
        by_mode = {spec.mode: spec.rushing for spec in plan.specs()}
        assert by_mode == {"sync": True, "async": False}
        plan.validate()  # must not raise

    def test_params_canonical_across_spellings(self):
        a = ExperimentSpec(n=8, params={"a": 1, "strategy": "naive"})
        b = ExperimentSpec(n=8, params=(("strategy", "naive"), ("a", 1)))
        assert a == b and hash(a) == hash(b)

    def test_params_values_roundtrip_exactly(self):
        # lists of pairs must stay lists, empty dicts must stay dicts
        params = {"matrix": [["x", 1], ["y", 2]], "empty": {}, "flag": True}
        spec = ExperimentSpec(n=8, params=params)
        assert spec.params_dict() == params
        restored = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.params_dict() == params

    def test_non_json_params_rejected(self):
        with pytest.raises(ValueError, match="JSON-serializable"):
            ExperimentSpec(n=8, params={"bad": object()})


class TestAdversaryRegistry:
    def test_unknown_name_lists_strategies(self, small_scenario, small_config, small_samplers):
        from repro.runner import make_adversary

        with pytest.raises(ValueError, match="unknown adversary 'nope'.*silent"):
            make_adversary("nope", small_scenario, small_config, small_samplers)

    def test_none_resolves_to_no_adversary(self, small_scenario, small_config, small_samplers):
        from repro.runner import make_adversary

        assert make_adversary("none", small_scenario, small_config, small_samplers) is None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            api.register_adversary("silent")(SilentAdversary)

    def test_legacy_factories_view_is_live_and_readonly(self):
        from repro.runner import ADVERSARY_FACTORIES

        assert "silent" in ADVERSARY_FACTORIES
        with pytest.raises(TypeError):
            ADVERSARY_FACTORIES["hack"] = lambda byz, knowledge: None  # type: ignore[index]

    def test_custom_adversary_runs_through_spec(self):
        @api.register_adversary("test_crash")
        class CrashOnly(SilentAdversary):
            pass

        try:
            result = api.run_experiment(
                "aer", n=SMALL_N, seed=SEED, adversary="test_crash"
            )
            assert result.agreement
        finally:
            ADVERSARIES.unregister("test_crash")


class TestDelayAndScenarioRegistries:
    def test_make_delay_policy(self):
        policy = make_delay_policy("constant", value=0.5)
        assert isinstance(policy, ConstantDelayPolicy)
        assert policy.value == 0.5
        with pytest.raises(ValueError, match="unknown delay policy"):
            make_delay_policy("teleport")

    def test_named_delay_policy_in_async_spec(self):
        result = api.run_experiment(
            "aer",
            n=SMALL_N,
            seed=SEED,
            mode="async",
            delay_policy="constant",
            delay_params={"value": 1.0},
        )
        assert result.agreement
        assert result.span is not None and result.span > 0

    def test_from_ae_scenario_generator(self):
        from repro.core.config import AERConfig
        from repro.protocols import make_scenario_by_name

        config = AERConfig.for_system(48)
        scenario = make_scenario_by_name("from_ae", 48, config, seed=1)
        assert scenario.n == 48
        assert len(scenario.gstring) == config.string_length
        # AER runs on the generated almost-everywhere state
        result = api.run_experiment("aer", n=48, seed=1, scenario="from_ae")
        assert result.decided_count == result.correct_count

    def test_unknown_scenario_generator(self):
        spec = ExperimentSpec(n=SMALL_N, params={"scenario": "martian"})
        with pytest.raises(ValueError, match="unknown scenario generator"):
            spec.run()


class TestMultiProtocolSweep:
    """The acceptance flow: one plan mixing aer, composed_ba and a baseline."""

    PLAN = ExperimentPlan(
        ns=(SMALL_N,),
        protocols=("aer", "composed_ba", "naive_broadcast"),
        seeds=(SEED, SEED + 1),
    )

    def test_mixed_plan_runs_and_roundtrips(self, tmp_path):
        sweep = SweepRunner(self.PLAN, jobs=1).run()
        assert len(sweep.records) == len(self.PLAN) == 6
        assert [r.spec.protocol for r in sweep.records[:3]] == [
            "aer", "aer", "composed_ba"
        ]
        path = tmp_path / "mix.json"
        sweep.save(str(path))
        loaded = SweepResult.load(str(path))
        assert loaded.plan == self.PLAN
        assert loaded.records == sweep.records
        assert {r.spec.protocol for r in loaded.records} == set(self.PLAN.protocols)

    def test_compare_rows_aggregate_across_seeds(self):
        from repro.analysis.experiments import compare_rows

        sweep = SweepRunner(self.PLAN, jobs=1).run()
        rows = compare_rows(sweep.records)
        assert [row["protocol"] for row in rows] == [
            "aer", "composed_ba", "naive_broadcast"
        ]
        for row in rows:
            assert row["runs"] == 2
            assert 0.0 <= row["agreement_rate"] <= 1.0
            assert row["total_bits"] > 0


class TestCLI:
    def test_run_other_protocol(self, capsys):
        code = cli_main([
            "run", "--n", str(SMALL_N), "--seed", str(SEED),
            "--protocol", "composed_ba", "--param", "strategy=naive",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"composed_ba:sync:none:n{SMALL_N}:s{SEED}" in out
        assert "strategy=naive" in out

    def test_run_rejects_bad_protocol(self, capsys):
        assert cli_main(["run", "--n", str(SMALL_N), "--protocol", "bogus"]) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_sweep_protocol_mix_writes_one_schema(self, tmp_path, capsys):
        out_path = tmp_path / "mix.json"
        code = cli_main([
            "sweep", "--ns", str(SMALL_N),
            "--protocols", "aer,composed_ba,naive_broadcast",
            "--seeds", str(SEED), "--jobs", "1", "--out", str(out_path),
        ])
        assert code == 0
        data = json.loads(out_path.read_text(encoding="utf-8"))
        protocols = [r["spec"]["protocol"] for r in data["records"]]
        assert protocols == ["aer", "composed_ba", "naive_broadcast"]
        keys = {frozenset(r) for r in data["records"]}
        assert len(keys) == 1  # one record schema across protocols
        assert "sweep of 3 experiments" in capsys.readouterr().out

    def test_compare_relaxes_unsupported_knobs(self, capsys):
        # composed_ba takes no adversary; the comparison must run anyway,
        # applying the adversary only to the protocols that accept it
        code = cli_main([
            "compare", "--ns", str(SMALL_N),
            "--protocols", "aer,composed_ba",
            "--adversary", "silent", "--seeds", str(SEED), "--jobs", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "aer" in out and "composed_ba" in out

    def test_compare_prints_cross_protocol_table(self, capsys):
        code = cli_main([
            "compare", "--ns", str(SMALL_N),
            "--protocols", "aer,composed_ba,naive_broadcast",
            "--seeds", str(SEED), "--jobs", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "protocol comparison" in out
        for column in ("agreement_rate", "total_bits", "max_node_bits", "rounds"):
            assert column in out
        for protocol in ("aer", "composed_ba", "naive_broadcast"):
            assert protocol in out

    def test_protocols_listing(self, capsys):
        assert cli_main(["protocols"]) == 0
        out = capsys.readouterr().out
        for protocol in BUILTIN_PROTOCOLS:
            assert protocol in out
        assert "delay policies" in out

    def test_param_requires_key_value(self, capsys):
        code = cli_main([
            "run", "--n", str(SMALL_N), "--param", "not-a-pair",
        ])
        assert code == 2
        assert "key=value" in capsys.readouterr().err


class TestApiFacade:
    def test_list_functions_cover_builtins(self):
        assert set(BUILTIN_PROTOCOLS) <= set(list_protocols())
        assert set(api.list_protocols()) == set(list_protocols())
        assert "silent" in api.list_adversaries()
        assert {"constant", "random"} <= set(api.list_delay_policies())
        assert {"synthetic", "from_ae"} <= set(api.list_scenarios())

    def test_spec_for_routes_kwargs(self):
        spec = api.spec_for(
            "composed_ba", SMALL_N, seed=SEED, label="x", strategy="naive"
        )
        assert spec.seed == SEED and spec.label == "x"
        assert spec.params_dict() == {"strategy": "naive"}

    def test_spec_for_validates(self):
        with pytest.raises(ValueError, match="does not accept"):
            api.spec_for("composed_ba", SMALL_N, adversary="silent")

    def test_compare_returns_sweep_and_rows(self):
        sweep, rows = api.compare(
            protocols=("sample_majority", "naive_broadcast"),
            ns=(SMALL_N,),
            seeds=(SEED,),
            jobs=1,
        )
        assert len(sweep.records) == 2
        assert [row["protocol"] for row in rows] == [
            "sample_majority", "naive_broadcast"
        ]

    def test_compare_relaxes_heterogeneous_mix(self):
        # shared adversary + a shared protocol param, over a mix where only
        # some protocols accept each: must run, not abort
        sweep, rows = api.compare(
            protocols=("aer", "composed_ba"),
            ns=(SMALL_N,),
            seeds=(SEED,),
            jobs=1,
            adversary="silent",
            params={"strategy": "naive"},
        )
        by_protocol = {r.spec.protocol: r.spec for r in sweep.records}
        assert by_protocol["aer"].adversary == "silent"
        assert by_protocol["aer"].params_dict() == {}  # strategy dropped for aer
        assert by_protocol["composed_ba"].adversary == "none"  # relaxed
        assert by_protocol["composed_ba"].params_dict() == {"strategy": "naive"}
        assert [row["protocol"] for row in rows] == ["aer", "composed_ba"]
