"""Tests for the communication/time accounting (repro.net.metrics)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.messages import PushMessage
from repro.net.messages import Message, SizeModel
from repro.net.metrics import MetricsCollector, NodeTraffic


def make_collector(n: int = 8) -> MetricsCollector:
    return MetricsCollector(SizeModel(n=n))


class TestNodeTraffic:
    def test_total_bits_sums_both_directions(self):
        traffic = NodeTraffic(sent_bits=10, received_bits=7)
        assert traffic.total_bits == 17

    def test_defaults_are_zero(self):
        traffic = NodeTraffic()
        assert traffic.sent_messages == 0
        assert traffic.total_bits == 0


class TestRecording:
    def test_record_send_returns_bit_cost(self):
        collector = make_collector()
        bits = collector.record_send(0, 1, PushMessage(candidate="0" * 12), time=0.0)
        assert bits == PushMessage(candidate="0" * 12).bits(collector.size_model)

    def test_send_counts_attributed_to_sender(self):
        collector = make_collector()
        collector.record_send(2, 3, Message(), time=0.0)
        assert collector.traffic_of(2).sent_messages == 1
        assert collector.traffic_of(3).sent_messages == 0

    def test_delivery_counts_attributed_to_destination(self):
        collector = make_collector()
        collector.record_delivery(5, bits=9)
        assert collector.traffic_of(5).received_messages == 1
        assert collector.traffic_of(5).received_bits == 9

    def test_unknown_node_has_zero_traffic(self):
        collector = make_collector()
        assert collector.traffic_of(7).total_bits == 0

    def test_decision_time_first_call_wins(self):
        collector = make_collector()
        collector.record_decision(1, 3.0)
        collector.record_decision(1, 9.0)
        assert collector.summary().decision_times[1] == 3.0

    def test_message_log_disabled_by_default(self):
        collector = make_collector()
        collector.record_send(0, 1, Message(), time=0.0)
        assert collector.message_log == []

    def test_message_log_enabled(self):
        collector = make_collector()
        collector.enable_message_log()
        collector.record_send(0, 1, Message(), time=2.0)
        assert len(collector.message_log) == 1
        sender, dest, kind, bits, time = collector.message_log[0]
        assert (sender, dest, time) == (0, 1, 2.0)


class TestSummary:
    def test_total_bits_counts_each_message_once(self):
        collector = make_collector()
        bits = collector.record_send(0, 1, Message(), time=0.0)
        collector.record_delivery(1, bits)
        summary = collector.summary()
        assert summary.total_bits == bits
        assert summary.total_messages == 1

    def test_amortized_is_total_over_n(self):
        collector = make_collector(n=4)
        for _ in range(8):
            collector.record_send(0, 1, Message(), time=0.0)
        summary = collector.summary()
        assert summary.amortized_bits == pytest.approx(summary.total_bits / 4)

    def test_restrict_to_excludes_other_nodes_loads(self):
        collector = make_collector(n=4)
        big = PushMessage(candidate="0" * 100)
        collector.record_send(3, 0, big, time=0.0)  # node 3 is "Byzantine"
        collector.record_send(0, 1, Message(), time=0.0)
        full = collector.summary()
        correct_only = collector.summary(restrict_to=[0, 1, 2])
        assert full.max_node_bits >= 100
        assert correct_only.max_node_bits < 100
        # totals remain system-wide in both summaries
        assert correct_only.total_bits == full.total_bits

    def test_per_node_bits_present(self):
        collector = make_collector(n=3)
        collector.record_send(1, 0, Message(), time=0.0)
        summary = collector.summary()
        assert set(summary.per_node_bits) == {0, 1, 2}
        assert summary.per_node_bits[1] > 0

    def test_load_imbalance_at_least_one_when_uniform(self):
        collector = make_collector(n=4)
        for node in range(4):
            collector.record_send(node, (node + 1) % 4, Message(), time=0.0)
        summary = collector.summary()
        assert summary.load_imbalance == pytest.approx(1.0)

    def test_rounds_and_span_pass_through(self):
        collector = make_collector()
        collector.record_rounds(6)
        collector.record_span(3.5)
        summary = collector.summary()
        assert summary.rounds == 6
        assert summary.span == 3.5

    def test_max_decision_time(self):
        collector = make_collector()
        collector.record_decision(0, 1.0)
        collector.record_decision(1, 4.0)
        assert collector.summary().max_decision_time == 4.0

    def test_max_decision_time_none_when_no_decisions(self):
        assert make_collector().summary().max_decision_time is None

    def test_row_is_flat_and_json_friendly(self):
        collector = make_collector()
        collector.record_rounds(3)
        row = collector.summary().row()
        assert row["rounds"] == 3
        assert all(isinstance(v, (int, float)) for v in row.values())

    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40))
    def test_hypothesis_totals_match_event_count(self, sends):
        collector = make_collector(n=8)
        for sender, dest in sends:
            collector.record_send(sender, dest, Message(), time=0.0)
        summary = collector.summary()
        assert summary.total_messages == len(sends)
        assert summary.total_bits == len(sends) * Message().bits(collector.size_model)


class TestBitsCacheEviction:
    """The memoised message-cost cache must stay bounded under floods."""

    def test_cache_never_exceeds_limit_under_distinct_message_flood(self):
        collector = MetricsCollector(SizeModel(n=8), bits_cache_limit=64)
        # A "millions of distinct messages" flood, scaled down: far more
        # distinct messages than the cache limit, in one streaming pass.
        for i in range(5_000):
            collector.record_send(0, 1, PushMessage(candidate=format(i, "013b")), time=0.0)
            assert collector.bits_cache_size <= 64
        assert collector.bits_cache_size == 64

    def test_eviction_drops_oldest_insertion_first(self):
        collector = MetricsCollector(SizeModel(n=8), bits_cache_limit=2)
        first = PushMessage(candidate="000")
        second = PushMessage(candidate="001")
        third = PushMessage(candidate="010")
        collector.bits_of(first)
        collector.bits_of(second)
        collector.bits_of(third)  # cache full: evicts `first`
        assert collector.bits_cache_size == 2
        assert first not in collector._bits_cache
        assert second in collector._bits_cache
        assert third in collector._bits_cache

    def test_values_stay_correct_across_evictions(self):
        collector = MetricsCollector(SizeModel(n=8), bits_cache_limit=4)
        messages = [PushMessage(candidate=format(i, "09b")) for i in range(32)]
        expected = {m: m.bits(collector.size_model) for m in messages}
        # Two interleaved passes so evicted entries are recomputed.
        for _ in range(2):
            for message in messages:
                assert collector.bits_of(message) == expected[message]
        assert collector.bits_cache_size <= 4

    def test_default_limit_unchanged(self):
        from repro.net.metrics import _BITS_CACHE_LIMIT

        assert MetricsCollector(SizeModel(n=8))._bits_cache_limit == _BITS_CACHE_LIMIT
