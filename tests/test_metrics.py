"""Tests for the communication/time accounting (repro.net.metrics)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.messages import PushMessage
from repro.net.messages import Message, SizeModel
from repro.net.metrics import MetricsCollector, NodeTraffic


def make_collector(n: int = 8) -> MetricsCollector:
    return MetricsCollector(SizeModel(n=n))


class TestNodeTraffic:
    def test_total_bits_sums_both_directions(self):
        traffic = NodeTraffic(sent_bits=10, received_bits=7)
        assert traffic.total_bits == 17

    def test_defaults_are_zero(self):
        traffic = NodeTraffic()
        assert traffic.sent_messages == 0
        assert traffic.total_bits == 0


class TestRecording:
    def test_record_send_returns_bit_cost(self):
        collector = make_collector()
        bits = collector.record_send(0, 1, PushMessage(candidate="0" * 12), time=0.0)
        assert bits == PushMessage(candidate="0" * 12).bits(collector.size_model)

    def test_send_counts_attributed_to_sender(self):
        collector = make_collector()
        collector.record_send(2, 3, Message(), time=0.0)
        assert collector.traffic_of(2).sent_messages == 1
        assert collector.traffic_of(3).sent_messages == 0

    def test_delivery_counts_attributed_to_destination(self):
        collector = make_collector()
        collector.record_delivery(5, bits=9)
        assert collector.traffic_of(5).received_messages == 1
        assert collector.traffic_of(5).received_bits == 9

    def test_unknown_node_has_zero_traffic(self):
        collector = make_collector()
        assert collector.traffic_of(7).total_bits == 0

    def test_decision_time_first_call_wins(self):
        collector = make_collector()
        collector.record_decision(1, 3.0)
        collector.record_decision(1, 9.0)
        assert collector.summary().decision_times[1] == 3.0

    def test_message_log_disabled_by_default(self):
        collector = make_collector()
        collector.record_send(0, 1, Message(), time=0.0)
        assert collector.message_log == []

    def test_message_log_enabled(self):
        collector = make_collector()
        collector.enable_message_log()
        collector.record_send(0, 1, Message(), time=2.0)
        assert len(collector.message_log) == 1
        sender, dest, kind, bits, time = collector.message_log[0]
        assert (sender, dest, time) == (0, 1, 2.0)


class TestSummary:
    def test_total_bits_counts_each_message_once(self):
        collector = make_collector()
        bits = collector.record_send(0, 1, Message(), time=0.0)
        collector.record_delivery(1, bits)
        summary = collector.summary()
        assert summary.total_bits == bits
        assert summary.total_messages == 1

    def test_amortized_is_total_over_n(self):
        collector = make_collector(n=4)
        for _ in range(8):
            collector.record_send(0, 1, Message(), time=0.0)
        summary = collector.summary()
        assert summary.amortized_bits == pytest.approx(summary.total_bits / 4)

    def test_restrict_to_excludes_other_nodes_loads(self):
        collector = make_collector(n=4)
        big = PushMessage(candidate="0" * 100)
        collector.record_send(3, 0, big, time=0.0)  # node 3 is "Byzantine"
        collector.record_send(0, 1, Message(), time=0.0)
        full = collector.summary()
        correct_only = collector.summary(restrict_to=[0, 1, 2])
        assert full.max_node_bits >= 100
        assert correct_only.max_node_bits < 100
        # totals remain system-wide in both summaries
        assert correct_only.total_bits == full.total_bits

    def test_per_node_bits_present(self):
        collector = make_collector(n=3)
        collector.record_send(1, 0, Message(), time=0.0)
        summary = collector.summary()
        assert set(summary.per_node_bits) == {0, 1, 2}
        assert summary.per_node_bits[1] > 0

    def test_load_imbalance_at_least_one_when_uniform(self):
        collector = make_collector(n=4)
        for node in range(4):
            collector.record_send(node, (node + 1) % 4, Message(), time=0.0)
        summary = collector.summary()
        assert summary.load_imbalance == pytest.approx(1.0)

    def test_rounds_and_span_pass_through(self):
        collector = make_collector()
        collector.record_rounds(6)
        collector.record_span(3.5)
        summary = collector.summary()
        assert summary.rounds == 6
        assert summary.span == 3.5

    def test_max_decision_time(self):
        collector = make_collector()
        collector.record_decision(0, 1.0)
        collector.record_decision(1, 4.0)
        assert collector.summary().max_decision_time == 4.0

    def test_max_decision_time_none_when_no_decisions(self):
        assert make_collector().summary().max_decision_time is None

    def test_row_is_flat_and_json_friendly(self):
        collector = make_collector()
        collector.record_rounds(3)
        row = collector.summary().row()
        assert row["rounds"] == 3
        assert all(isinstance(v, (int, float)) for v in row.values())

    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40))
    def test_hypothesis_totals_match_event_count(self, sends):
        collector = make_collector(n=8)
        for sender, dest in sends:
            collector.record_send(sender, dest, Message(), time=0.0)
        summary = collector.summary()
        assert summary.total_messages == len(sends)
        assert summary.total_bits == len(sends) * Message().bits(collector.size_model)
