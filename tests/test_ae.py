"""Tests for the almost-everywhere agreement substrate (repro.ae)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ae.coin import combine_contributions, fraction_agreeing, majority_string, xor_strings
from repro.ae.committees import CommitteeTree
from repro.ae.config import AEConfig
from repro.ae.protocol import FINALIZE_ROUND, build_ae_nodes, scenario_from_ae_run
from repro.net.messages import SizeModel
from repro.net.rng import derive_rng
from repro.net.sync import SynchronousSimulator


class TestCoinHelpers:
    def test_xor_basic(self):
        assert xor_strings("1100", "1010") == "0110"

    def test_xor_identity(self):
        assert xor_strings("1011", "0000") == "1011"

    def test_xor_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_strings("10", "100")

    def test_combine_skips_garbled_contributions(self):
        contributions = {0: "1100", 1: "not-bits", 2: "11"}
        assert combine_contributions(contributions, 4) == "1100"

    def test_combine_is_xor_of_valid_entries(self):
        contributions = {0: "1100", 1: "1010"}
        assert combine_contributions(contributions, 4) == "0110"

    def test_combine_empty(self):
        assert combine_contributions({}, 5) == "00000"

    def test_majority_string_plurality(self):
        assert majority_string(["a", "b", "a"]) == "a"

    def test_majority_string_threshold_not_met(self):
        assert majority_string(["a", "b", "a"], threshold=3) is None

    def test_majority_string_tie_is_deterministic(self):
        assert majority_string(["b", "a"]) == "a"

    def test_majority_string_empty(self):
        assert majority_string([]) is None

    def test_fraction_agreeing(self):
        assert fraction_agreeing(["x", "x", "y"], "x") == pytest.approx(2 / 3)
        assert fraction_agreeing([], "x") == 0.0

    @given(st.text(alphabet="01", min_size=1, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_hypothesis_xor_involution(self, bits):
        other = "1" * len(bits)
        assert xor_strings(xor_strings(bits, other), other) == bits


class TestCommitteeTree:
    @pytest.fixture(scope="class")
    def tree(self):
        return CommitteeTree(AEConfig.for_system(96, seed=3))

    def test_leaves_partition_population(self, tree):
        members = []
        for index in range(tree.total_committees):
            if tree.is_leaf(index):
                members.extend(tree.committee(index).members)
        assert sorted(members) == list(range(96))

    def test_internal_committee_size(self, tree):
        for index in range(tree.leaf_count - 1):
            assert tree.committee(index).size == tree.config.committee_size

    def test_children_and_parent_consistent(self, tree):
        for index in range(tree.total_committees):
            for child in tree.children(index):
                assert tree.parent(child) == index

    def test_root_has_no_parent(self, tree):
        assert tree.parent(0) is None
        assert tree.root.index == 0

    def test_depth_monotone_along_children(self, tree):
        for index in range(tree.leaf_count - 1):
            for child in tree.children(index):
                assert tree.depth(child) == tree.depth(index) + 1

    def test_height_is_logarithmic(self, tree):
        assert tree.height <= 8

    def test_memberships_cover_every_committee(self, tree):
        total = sum(len(tree.memberships_of(node)) for node in range(96))
        expected = sum(tree.committee(i).size for i in range(tree.total_committees))
        assert total == expected

    def test_leaf_of_contains_node(self, tree):
        for node in range(0, 96, 11):
            leaf = tree.leaf_of(node)
            assert tree.is_leaf(leaf)
            assert node in tree.committee(leaf).members

    def test_out_of_range_committee_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.committee(tree.total_committees)

    def test_bad_committees_empty_without_corruption(self, tree):
        assert tree.bad_committees([]) == []

    def test_bad_committees_detects_full_corruption(self, tree):
        byz = set(tree.root.members)
        assert 0 in tree.bad_committees(byz)

    def test_majority_threshold(self, tree):
        committee = tree.root
        assert committee.majority_threshold() == committee.size // 2 + 1

    def test_deterministic_given_seed(self):
        a = CommitteeTree(AEConfig.for_system(64, seed=5))
        b = CommitteeTree(AEConfig.for_system(64, seed=5))
        assert a.committee(0).members == b.committee(0).members


class TestAEProtocol:
    def _run(self, n=96, byz=None, seed=2):
        config = AEConfig.for_system(n, seed=seed)
        byz = frozenset(byz or [])
        nodes = build_ae_nodes(config, byz)
        sim = SynchronousSimulator(
            nodes=nodes,
            n=n,
            seed=seed,
            max_rounds=40,
            min_rounds=FINALIZE_ROUND + 1,
            size_model=SizeModel(n=n),
        )
        result = sim.run()
        return config, nodes, result

    def test_all_nodes_learn_without_faults(self):
        config, nodes, result = self._run()
        learned = [node.learned for node in nodes]
        assert all(value is not None for value in learned)
        assert len(set(learned)) == 1

    def test_learned_string_has_right_length(self):
        config, nodes, _ = self._run()
        assert all(len(node.learned) == config.string_length for node in nodes)

    def test_learned_string_is_not_degenerate(self):
        # The coin protocol XORs private randomness; all-zeros is essentially impossible.
        config, nodes, _ = self._run()
        assert set(nodes[0].learned) == {"0", "1"}

    def test_most_nodes_learn_with_random_corruption(self):
        n = 96
        rng = derive_rng(4, "test-ae-byz")
        byz = rng.sample(range(n), n // 6)
        config, nodes, _ = self._run(n=n, byz=byz, seed=4)
        learned = [node.learned for node in nodes if node.learned is not None]
        assert len(learned) >= 0.8 * len(nodes)
        # and the learners agree on a single value
        assert len(set(learned)) == 1

    def test_round_count_scales_with_tree_height(self):
        config, nodes, result = self._run()
        tree = CommitteeTree(config)
        assert result.rounds <= FINALIZE_ROUND + tree.height + 3

    def test_per_node_cost_is_polylog(self):
        _, _, result = self._run()
        # committee-size ~ 2 log n, string ~ 4 log n: per-node bits stay in the low thousands
        assert result.metrics.max_node_bits < 60_000

    def test_scenario_from_ae_run(self):
        n = 96
        rng = derive_rng(5, "test-ae-scn")
        byz = rng.sample(range(n), n // 6)
        config, nodes, _ = self._run(n=n, byz=byz, seed=5)
        scenario = scenario_from_ae_run(nodes, n, byz, config.string_length)
        assert scenario.n == n
        assert set(scenario.byzantine_ids) == set(byz)
        assert set(scenario.candidates) == {node.node_id for node in nodes}
        assert len(scenario.gstring) == config.string_length
        # the plurality value becomes gstring and most nodes hold it
        assert scenario.knowledge_fraction_of_all > 0.5

    def test_scenario_from_empty_learning_defaults_to_zeros(self):
        config = AEConfig.for_system(16, seed=1)
        nodes = build_ae_nodes(config, byzantine_ids=[])
        # never run: nobody learned anything
        scenario = scenario_from_ae_run(nodes, 16, [], config.string_length)
        assert scenario.gstring == "0" * config.string_length


class TestAEConfig:
    def test_committee_size_odd(self):
        for n in (16, 64, 256):
            assert AEConfig.for_system(n).committee_size % 2 == 1

    def test_committee_size_capped_by_n(self):
        assert AEConfig.for_system(4).committee_size <= 4

    def test_string_length_matches_default(self):
        assert AEConfig.for_system(256).string_length == 32
