"""Tests for the AER node state machine and end-to-end AER behaviour."""

from __future__ import annotations

import pytest

from repro.core.aer import AERNode
from repro.core.config import AERConfig
from repro.core.messages import PushMessage
from repro.core.scenario import build_aer_nodes, make_scenario
from repro.net.sync import SynchronousSimulator
from repro.runner import run_aer


class TestNodeBasics:
    def test_believed_starts_as_initial_candidate(self, small_config):
        samplers = small_config.build_samplers()
        node = AERNode(0, small_config, samplers, initial_candidate="abc")
        assert node.believed == "abc"
        assert not node.has_decided

    def test_decide_updates_belief(self, small_config):
        samplers = small_config.build_samplers()
        node = AERNode(0, small_config, samplers, initial_candidate="abc")
        node.decide("xyz")
        assert node.has_decided
        assert node.believed == "xyz"
        assert node.decision == "xyz"

    def test_decide_is_irrevocable(self, small_config):
        samplers = small_config.build_samplers()
        node = AERNode(0, small_config, samplers, initial_candidate="abc")
        node.decide("first")
        node.decide("second")
        assert node.decision == "first"
        assert node.believed == "first"

    def test_candidate_list_starts_with_own_candidate(self, small_config):
        samplers = small_config.build_samplers()
        node = AERNode(0, small_config, samplers, initial_candidate="abc")
        assert node.candidate_list == frozenset({"abc"})

    def test_knows_gstring_none_until_decided(self, small_config):
        samplers = small_config.build_samplers()
        node = AERNode(0, small_config, samplers, initial_candidate="abc")
        assert node.knows_gstring is None
        node.decide("abc")
        assert node.knows_gstring is True


class TestEndToEnd:
    def test_failure_free_run_reaches_agreement(self, small_scenario, small_config, small_sync_result):
        result = small_sync_result
        assert result.agreement_reached
        assert result.agreement_value() == small_scenario.gstring

    def test_constant_round_count_without_adversary(self, small_sync_result):
        # Push (1) + Poll/Pull (1) + Fw1 (1) + Fw2 (1) + Answer (1) ≈ 5 rounds.
        assert small_sync_result.rounds <= 6

    def test_every_decision_is_gstring(self, small_scenario, small_sync_result):
        assert all(v == small_scenario.gstring for v in small_sync_result.decisions.values())

    def test_byzantine_nodes_have_no_decisions(self, small_scenario, small_sync_result):
        assert not set(small_sync_result.decisions) & set(small_scenario.byzantine_ids)

    def test_knowledgeable_nodes_keep_their_candidate(self, small_scenario, small_config):
        result = run_aer(small_scenario, config=small_config, adversary_name="none", seed=3)
        for node_id in small_scenario.knowledgeable_ids:
            assert result.decisions[node_id] == small_scenario.gstring

    def test_sum_of_candidate_lists_linear(self, small_scenario, small_config):
        samplers = small_config.build_samplers()
        nodes = build_aer_nodes(small_scenario, small_config, samplers=samplers)
        SynchronousSimulator(
            nodes=nodes, n=small_scenario.n, seed=1, size_model=small_config.size_model()
        ).run()
        total = sum(node.push_engine.candidate_list_size for node in nodes)
        # Lemma 4: O(n); without an adversary the constant is tiny.
        assert total <= 3 * small_scenario.n

    def test_non_eager_mode_still_agrees(self, small_scenario):
        config = AERConfig.for_system(small_scenario.n, sampler_seed=11).with_(
            eager_pull=False, pull_start_round=2
        )
        result = run_aer(small_scenario, config=config, adversary_name="none", seed=5)
        assert result.agreement_reached
        assert result.agreement_value() == small_scenario.gstring

    def test_async_mode_agrees(self, small_scenario, small_config):
        result = run_aer(
            small_scenario, config=small_config, adversary_name="none", mode="async", seed=2
        )
        assert result.agreement_reached
        assert result.agreement_value() == small_scenario.gstring
        assert result.span is not None

    def test_unknown_junk_messages_ignored(self, small_config):
        samplers = small_config.build_samplers()
        node = AERNode(0, small_config, samplers, initial_candidate="abc")

        class FakeContext:
            node_id = 0
            n = small_config.n
            rng = None

            def send(self, dest, message):
                raise AssertionError("junk must not trigger sends")

            def now(self):
                return 0.0

        node.bind(FakeContext())
        from repro.net.messages import Message

        node.on_message(5, Message())  # must not raise nor send

    def test_push_triggers_candidate_acceptance(self, small_config):
        samplers = small_config.build_samplers()
        scenario = make_scenario(small_config.n, config=small_config, t=4, knowledge_fraction=0.8, seed=13)
        nodes = build_aer_nodes(scenario, small_config, samplers=samplers)
        target = nodes[0]
        quorum = samplers.push.quorum("forced-string", target.node_id)

        class FakeContext:
            node_id = target.node_id
            n = small_config.n

            def __init__(self):
                from repro.net.rng import derive_rng

                self.rng = derive_rng(0, "test")

            def send(self, dest, message):
                pass

            def now(self):
                return 0.0

        target.bind(FakeContext())
        for sender in quorum[: len(quorum) // 2 + 1]:
            target.on_message(sender, PushMessage(candidate="forced-string"))
        assert "forced-string" in target.candidate_list


class TestDeterminism:
    def test_same_seed_identical_results(self, small_scenario, small_config):
        a = run_aer(small_scenario, config=small_config, adversary_name="none", seed=9)
        b = run_aer(small_scenario, config=small_config, adversary_name="none", seed=9)
        assert a.decisions == b.decisions
        assert a.metrics.total_bits == b.metrics.total_bits
        assert a.rounds == b.rounds

    def test_different_seed_same_agreement(self, small_scenario, small_config):
        a = run_aer(small_scenario, config=small_config, adversary_name="none", seed=1)
        b = run_aer(small_scenario, config=small_config, adversary_name="none", seed=2)
        assert a.agreement_value() == b.agreement_value() == small_scenario.gstring
