"""Tests for the quorum and poll-list samplers (repro.samplers)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.samplers.base import SamplerSpec, default_label_space, default_quorum_size, default_string_length
from repro.samplers.hash_sampler import QuorumSampler
from repro.samplers.poll_sampler import PollSampler


SPEC = SamplerSpec(n=64, quorum_size=9, label_space=64 * 64, seed=3)


class TestSamplerSpec:
    def test_for_system_quorum_size_is_odd(self):
        for n in (16, 64, 100, 500):
            assert SamplerSpec.for_system(n).quorum_size % 2 == 1

    def test_for_system_quorum_size_grows_logarithmically(self):
        small = SamplerSpec.for_system(32).quorum_size
        big = SamplerSpec.for_system(1024).quorum_size
        assert big > small
        assert big <= 4 * small  # log-like growth, not linear

    def test_default_quorum_size_capped_by_n(self):
        assert default_quorum_size(4) <= 4

    def test_default_label_space_polynomial(self):
        assert default_label_space(100) == 100 * 100

    def test_default_string_length_scales_with_log(self):
        assert default_string_length(256) == 4 * 8

    def test_default_quorum_minimum(self):
        assert default_quorum_size(8, multiplier=0.1) >= 7


class TestQuorumSampler:
    @pytest.fixture(scope="class")
    def sampler(self):
        return QuorumSampler(SPEC, name="I")

    def test_quorum_size(self, sampler):
        assert len(sampler.quorum("0101", 7)) == SPEC.quorum_size

    def test_members_distinct(self, sampler):
        quorum = sampler.quorum("0101", 7)
        assert len(set(quorum)) == len(quorum)

    def test_members_in_range(self, sampler):
        assert all(0 <= member < SPEC.n for member in sampler.quorum("x", 0))

    def test_deterministic(self, sampler):
        assert sampler.quorum("abc", 5) == sampler.quorum("abc", 5)

    def test_deterministic_across_instances(self):
        a = QuorumSampler(SPEC, name="I")
        b = QuorumSampler(SPEC, name="I")
        assert a.quorum("s", 3) == b.quorum("s", 3)

    def test_different_names_give_different_families(self):
        push = QuorumSampler(SPEC, name="I")
        pull = QuorumSampler(SPEC, name="H")
        diffs = sum(
            1 for x in range(SPEC.n) if push.quorum("s", x) != pull.quorum("s", x)
        )
        assert diffs > SPEC.n // 2

    def test_different_strings_give_different_quorums(self, sampler):
        diffs = sum(
            1 for x in range(SPEC.n) if sampler.quorum("s1", x) != sampler.quorum("s2", x)
        )
        assert diffs > SPEC.n // 2

    def test_sorted_output(self, sampler):
        quorum = sampler.quorum("sorted", 1)
        assert list(quorum) == sorted(quorum)

    def test_contains(self, sampler):
        quorum = sampler.quorum("c", 2)
        assert sampler.contains("c", 2, quorum[0])
        outsider = next(i for i in range(SPEC.n) if i not in quorum)
        assert not sampler.contains("c", 2, outsider)

    def test_majority_threshold(self, sampler):
        assert sampler.majority_threshold("m", 0) == SPEC.quorum_size // 2 + 1

    def test_inverse_consistency(self, sampler):
        s = "inverse-check"
        for y in range(0, SPEC.n, 7):
            for x in sampler.inverse(s, y):
                assert y in sampler.quorum(s, x)

    def test_inverse_covers_all_memberships(self, sampler):
        s = "coverage"
        memberships = sum(len(sampler.inverse(s, y)) for y in range(SPEC.n))
        assert memberships == SPEC.n * SPEC.quorum_size

    def test_load_of_matches_inverse(self, sampler):
        s = "load"
        assert sampler.load_of(s, 5) == len(sampler.inverse(s, 5))

    def test_average_load_equals_quorum_size(self, sampler):
        s = "avg"
        total = sum(sampler.load_of(s, y) for y in range(SPEC.n))
        assert total / SPEC.n == pytest.approx(SPEC.quorum_size)

    def test_quorum_size_capped_at_n(self):
        tiny = SamplerSpec(n=5, quorum_size=20, label_space=16, seed=0)
        sampler = QuorumSampler(tiny, name="I")
        assert len(sampler.quorum("s", 0)) == 5

    @given(st.text(alphabet="01", min_size=1, max_size=32), st.integers(0, 63))
    @settings(max_examples=30, deadline=None)
    def test_hypothesis_size_and_determinism(self, s, x):
        sampler = QuorumSampler(SPEC, name="I")
        quorum = sampler.quorum(s, x)
        assert len(quorum) == SPEC.quorum_size
        assert quorum == sampler.quorum(s, x)


class TestPollSampler:
    @pytest.fixture(scope="class")
    def sampler(self):
        return PollSampler(SPEC)

    def test_list_size(self, sampler):
        assert len(sampler.poll_list(3, 17)) == SPEC.quorum_size

    def test_members_distinct_and_in_range(self, sampler):
        members = sampler.poll_list(3, 17)
        assert len(set(members)) == len(members)
        assert all(0 <= m < SPEC.n for m in members)

    def test_deterministic(self, sampler):
        assert sampler.poll_list(4, 99) == sampler.poll_list(4, 99)

    def test_label_out_of_range_rejected(self, sampler):
        with pytest.raises(ValueError):
            sampler.poll_list(0, SPEC.label_space)
        with pytest.raises(ValueError):
            sampler.poll_list(0, -1)

    def test_random_label_in_range(self, sampler):
        rng = random.Random(0)
        labels = [sampler.random_label(rng) for _ in range(200)]
        assert all(0 <= label < SPEC.label_space for label in labels)
        assert len(set(labels)) > 100  # labels are actually random

    def test_different_labels_different_lists(self, sampler):
        diffs = sum(
            1 for r in range(50) if sampler.poll_list(0, r) != sampler.poll_list(0, r + 50)
        )
        assert diffs > 40

    def test_different_nodes_different_lists(self, sampler):
        diffs = sum(1 for x in range(20) if sampler.poll_list(x, 5) != sampler.poll_list(x + 20, 5))
        assert diffs > 15

    def test_contains_and_threshold(self, sampler):
        members = sampler.poll_list(1, 2)
        assert sampler.contains(1, 2, members[0])
        assert sampler.majority_threshold(1, 2) == len(members) // 2 + 1

    @given(st.integers(0, 63), st.integers(0, 64 * 64 - 1))
    @settings(max_examples=30, deadline=None)
    def test_hypothesis_determinism(self, x, r):
        sampler = PollSampler(SPEC)
        assert sampler.poll_list(x, r) == sampler.poll_list(x, r)
