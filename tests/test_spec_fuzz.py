"""Randomized spec fuzzer: ~500 seeded valid/invalid ExperimentSpec spellings.

The spec layer's contract is that an :class:`ExperimentSpec` is a *value*:
any spelling of the same run — params as a dict or as JSON text, faults as a
dict, JSON text or :class:`~repro.faults.FaultSchedule`, defaults written
out or omitted — collapses to one canonical frozen object with one
content-addressed ``spec_key``, and every malformed spelling is rejected
with the offending key named.  Hand-written examples cannot cover that
combinatorially, so this module drives a *seeded* generator (fixed seed →
the suite is deterministic) through hundreds of spellings:

* **valid specs** must construct, survive a canonical-JSON round-trip
  (``to_dict`` → ``json`` → ``from_dict``) as an *equal* object with a
  *stable* ``spec_key``, and equal-meaning spellings must be equal objects;
* **invalid specs** must raise ``ValueError`` from construction or
  ``validate()`` with the offending key (or mode/backend value) named in
  the message — a fuzzer-found rejection that does not say *what* was wrong
  is a bug here, even if rejecting was right.
"""

from __future__ import annotations

import json
import random

from repro.experiments.plan import ExperimentSpec
from repro.faults import FaultSchedule
from repro.store.keys import spec_key

import pytest

#: fixed fuzz seed — the whole suite is deterministic and reproducible
FUZZ_SEED = 0xAE12
VALID_CASES = 300
INVALID_CASES = 200

ADVERSARIES = ("none", "silent", "equivocate", "wrong_answer", "noise")
TRACE_MODES = ("off", "summary", "full")
DELAY_POLICIES = ("random", "constant", "pareto", "lognormal")


def _random_faults(rng: random.Random, mode: str) -> dict:
    """A random *valid* fault-knob dict (possibly empty) for ``mode``."""
    faults: dict = {}
    if rng.random() < 0.4:
        faults["loss_rate"] = round(rng.uniform(0.0, 0.9), 3)
    if rng.random() < 0.3:
        faults["churn_rate"] = round(rng.uniform(0.01, 0.5), 3)
        if rng.random() < 0.5:
            faults["recovery_rate"] = round(rng.uniform(0.0, 1.0), 3)
        if rng.random() < 0.3:
            faults["churn_start"] = float(rng.randrange(0, 5))
    if rng.random() < 0.3:
        start = round(rng.uniform(0.0, 3.0), 2)
        faults["partitions"] = [
            {
                "start": start,
                "end": round(start + rng.uniform(0.5, 3.0), 2),
                "fraction": round(rng.uniform(0.1, 0.9), 2),
            }
        ]
    if mode == "async" and rng.random() < 0.3:
        faults["slow_fraction"] = round(rng.uniform(0.1, 1.0), 2)
        faults["slow_factor"] = round(rng.uniform(1.0, 8.0), 2)
        if rng.random() < 0.5:
            faults["byzantine_factor"] = round(rng.uniform(0.1, 4.0), 2)
    return faults


def _random_valid_spec(rng: random.Random) -> ExperimentSpec:
    mode = rng.choice(("sync", "async"))
    params: dict = {}
    if mode == "async" and rng.random() < 0.3:
        params["delay_policy"] = rng.choice(DELAY_POLICIES)
    if rng.random() < 0.2:
        params["max_rounds"] = rng.randrange(8, 64)
    faults = _random_faults(rng, mode)
    spelling = rng.random()
    return ExperimentSpec(
        n=rng.randrange(8, 256),
        adversary=rng.choice(ADVERSARIES),
        mode=mode,
        rushing=(mode == "sync" and rng.random() < 0.2),
        seed=rng.randrange(0, 1000),
        knowledge_fraction=round(rng.uniform(0.7, 0.95), 3),
        quorum_multiplier=round(rng.uniform(1.5, 3.0), 2),
        trace=rng.choice(TRACE_MODES),
        label=rng.choice(("", "fuzz", "series-a")),
        params=json.dumps(params) if spelling < 0.3 else params,
        faults=(
            json.dumps(faults)
            if spelling < 0.3
            else FaultSchedule.from_dict(faults) if spelling < 0.5 else faults
        ),
    )


def test_valid_specs_round_trip_canonically():
    rng = random.Random(FUZZ_SEED)
    for case in range(VALID_CASES):
        spec = _random_valid_spec(rng)
        context = f"case {case}: {spec!r}"

        # canonical-JSON round-trip equality (through real JSON text, as the
        # sweep files and the experiment service do)
        data = json.loads(json.dumps(spec.to_dict()))
        rebuilt = ExperimentSpec.from_dict(data)
        assert rebuilt == spec, context
        assert rebuilt.to_dict() == spec.to_dict(), context

        # spec_key stability across the round-trip and across re-spellings
        key = spec_key(spec)
        assert spec_key(rebuilt) == key, context
        respelled = spec.with_(
            params=spec.params_dict(), faults=spec.faults_dict()
        )
        assert respelled == spec and spec_key(respelled) == key, context

        # the spec is actually runnable as described
        spec.validate()


def test_equal_meaning_spellings_are_equal_objects():
    rng = random.Random(FUZZ_SEED + 1)
    for case in range(50):
        faults = _random_faults(rng, "async")
        as_dict = ExperimentSpec(n=32, mode="async", faults=faults)
        as_json = ExperimentSpec(n=32, mode="async", faults=json.dumps(faults))
        as_schedule = ExperimentSpec(
            n=32, mode="async", faults=FaultSchedule.from_dict(faults)
        )
        assert as_dict == as_json == as_schedule, f"case {case}: {faults}"
        assert spec_key(as_dict) == spec_key(as_json) == spec_key(as_schedule)


def _invalid_case(rng: random.Random):
    """One random malformed spelling: (builder, substring the error must name)."""
    fault_knob = rng.choice(
        ("loss_rate", "churn_rate", "recovery_rate", "slow_fraction")
    )
    bad_value = rng.choice((-0.5, 1.5, 7.0, "high", True))
    unknown_key = rng.choice(("drop_rate", "crashes", "lossrate", "jitter"))
    kind = rng.randrange(10)
    if kind == 0:
        data = ExperimentSpec(n=24).to_dict()
        data[unknown_key] = 1
        return (lambda: ExperimentSpec.from_dict(data)), unknown_key
    if kind == 1:
        return (lambda: ExperimentSpec(n=24, faults={unknown_key: 0.1})), unknown_key
    if kind == 2:
        return (
            lambda: ExperimentSpec(n=24, faults={fault_knob: bad_value})
        ), fault_knob
    if kind == 3:
        window = rng.choice(
            (
                {"start": 5.0, "end": 1.0},
                {"start": 0.0, "end": 2.0, "fraction": rng.choice((0.0, 1.0))},
                {"end": 3.0},
                {"start": 0.0, "end": 2.0, unknown_key: 1},
                "both-sides",
            )
        )
        return (
            lambda: ExperimentSpec(n=24, faults={"partitions": [window]})
        ), "partitions"
    if kind == 4:
        return (
            lambda: ExperimentSpec(n=24, faults={"churn_start": 3.0})
        ), "churn_start"
    if kind == 5:
        knob = rng.choice(("slow_fraction", "byzantine_factor"))
        faults = (
            {"slow_fraction": 0.5, "slow_factor": 2.0}
            if knob == "slow_fraction"
            else {"byzantine_factor": 0.5}
        )
        spec = ExperimentSpec(n=24, mode="sync", faults=faults)
        return spec.validate, knob
    if kind == 6:
        spec = ExperimentSpec(n=24, mode=rng.choice(("synch", "both", "")))
        return spec.validate, "mode"
    if kind == 7:
        spec = ExperimentSpec(n=24, trace=rng.choice(("on", "verbose")))
        return spec.validate, "trace"
    if kind == 8:
        spec = ExperimentSpec(n=24, backend=rng.choice(("numpy", "gpu")))
        return spec.validate, "backend"
    spec = ExperimentSpec(
        n=24, backend="vectorized", faults={"loss_rate": 0.2}
    )
    return spec.validate, "vectorized"


def test_invalid_specs_are_rejected_naming_the_offender():
    rng = random.Random(FUZZ_SEED + 2)
    for case in range(INVALID_CASES):
        builder, needle = _invalid_case(rng)
        with pytest.raises(ValueError) as err:
            builder()
        assert needle in str(err.value), f"case {case}: {needle!r} not in {err.value}"
