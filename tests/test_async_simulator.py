"""Tests for the asynchronous event-queue scheduler."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import pytest

from repro.net.asynchronous import (
    MIN_DELAY,
    AsynchronousSimulator,
    ConstantDelayPolicy,
    RandomDelayPolicy,
)
from repro.net.messages import Message
from repro.net.node import Node


@dataclass(frozen=True)
class Tick(Message):
    hops: int = 0
    kind: str = "tick"


class ChainNode(Node):
    """Forwards a token along the ring a fixed number of hops, then decides."""

    def __init__(self, node_id: int, n: int, max_hops: int) -> None:
        super().__init__(node_id)
        self.n = n
        self.max_hops = max_hops
        self.deliveries: List[float] = []

    def on_start(self) -> None:
        if self.node_id == 0:
            self.send(1 % self.n, Tick(hops=1))

    def on_message(self, sender: int, message: Message) -> None:
        self.deliveries.append(self.context.now())
        if isinstance(message, Tick):
            if message.hops >= self.max_hops:
                self.decide(message.hops)
            else:
                self.send((self.node_id + 1) % self.n, Tick(hops=message.hops + 1))
            if not self.has_decided and message.hops >= self.max_hops:
                self.decide(message.hops)


class AllDecideNode(Node):
    def on_start(self) -> None:
        for peer in range(self.context.n):
            if peer != self.node_id:
                self.send(peer, Tick())

    def on_message(self, sender: int, message: Message) -> None:
        self.decide("ok")


class DelayRecordingAdversary:
    """Observes all sends and forces a fixed delay on them."""

    def __init__(self, byz_ids, forced_delay):
        self._byz = frozenset(byz_ids)
        self.forced_delay = forced_delay
        self.observed: List = []

    @property
    def byzantine_ids(self):
        return self._byz

    def bind(self, context):
        self.context = context

    def on_start(self):
        pass

    def on_deliver(self, byz_id, sender, message):
        pass

    def on_round(self, round_no, observed):
        pass

    def observe_send(self, record):
        self.observed.append(record)

    def delay_for(self, record):
        return self.forced_delay


class TestDelayPolicies:
    def test_constant_policy_returns_value(self):
        policy = ConstantDelayPolicy(0.25)
        assert policy.delay(None, None) == 0.25

    def test_constant_policy_validates_range(self):
        with pytest.raises(ValueError):
            ConstantDelayPolicy(2.0)
        with pytest.raises(ValueError):
            ConstantDelayPolicy(0.0)

    def test_random_policy_within_bounds(self):
        import random

        policy = RandomDelayPolicy(0.2, 0.7)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.2 <= policy.delay(None, rng) <= 0.7

    def test_random_policy_validates_bounds(self):
        with pytest.raises(ValueError):
            RandomDelayPolicy(0.5, 0.1)

    def test_base_policy_is_abstract(self):
        from repro.net.asynchronous import DelayPolicy

        with pytest.raises(NotImplementedError):
            DelayPolicy().delay(None, None)


class TestExecution:
    def test_time_advances_monotonically(self):
        nodes = [ChainNode(i, 4, max_hops=6) for i in range(4)]
        sim = AsynchronousSimulator(nodes=nodes, n=4, seed=1)
        sim.run()
        for node in nodes:
            assert node.deliveries == sorted(node.deliveries)

    def test_span_reflects_chain_length_with_constant_delays(self):
        nodes = [ChainNode(i, 3, max_hops=5) for i in range(3)]
        sim = AsynchronousSimulator(
            nodes=nodes, n=3, seed=1, delay_policy=ConstantDelayPolicy(1.0)
        )
        result = sim.run()
        # 5 hops at exactly one time unit each
        assert result.span == pytest.approx(5.0)

    def test_all_nodes_decide_simple_broadcast(self):
        nodes = [AllDecideNode(i) for i in range(5)]
        result = AsynchronousSimulator(nodes=nodes, n=5, seed=2).run()
        assert result.all_correct_decided
        assert result.rounds is None
        assert result.span is not None

    def test_delays_never_exceed_reliability_bound(self):
        nodes = [AllDecideNode(i) for i in range(6)]
        result = AsynchronousSimulator(nodes=nodes, n=6, seed=3).run()
        # every message has delay <= 1, and only one "wave" of messages exists
        assert result.span <= 1.0 + 1e-9

    def test_max_events_cap_stops_runaway(self):
        class PingPong(Node):
            def on_start(self):
                self.send(1 - self.node_id, Tick())

            def on_message(self, sender, message):
                self.send(sender, Tick())  # never decides

        sim = AsynchronousSimulator(
            nodes=[PingPong(0), PingPong(1)], n=2, seed=0, max_events=50
        )
        result = sim.run()
        assert not result.all_correct_decided
        assert result.metrics.total_messages >= 50

    def test_max_time_cap(self):
        class Slowpoke(Node):
            def on_start(self):
                self.send(self.node_id, Tick())

            def on_message(self, sender, message):
                self.send(self.node_id, Tick())

        sim = AsynchronousSimulator(
            nodes=[Slowpoke(0)], n=1, seed=0, max_time=5.0,
            delay_policy=ConstantDelayPolicy(1.0),
        )
        result = sim.run()
        assert not result.all_correct_decided

    def test_determinism(self):
        r1 = AsynchronousSimulator(nodes=[AllDecideNode(i) for i in range(5)], n=5, seed=9).run()
        r2 = AsynchronousSimulator(nodes=[AllDecideNode(i) for i in range(5)], n=5, seed=9).run()
        assert r1.span == r2.span
        assert r1.metrics.total_bits == r2.metrics.total_bits


class TestAdversaryScheduling:
    def test_adversary_observes_every_send(self):
        adversary = DelayRecordingAdversary({5}, forced_delay=None)
        nodes = [AllDecideNode(i) for i in range(5)]
        result = AsynchronousSimulator(nodes=nodes, n=6, adversary=adversary, seed=1).run()
        assert len(adversary.observed) == result.metrics.total_messages

    def test_adversary_controls_delays(self):
        adversary = DelayRecordingAdversary({5}, forced_delay=1.0)
        nodes = [AllDecideNode(i) for i in range(5)]
        result = AsynchronousSimulator(nodes=nodes, n=6, adversary=adversary, seed=1).run()
        assert result.span == pytest.approx(1.0)

    def test_adversary_delay_clamped_to_reliability_bound(self):
        adversary = DelayRecordingAdversary({5}, forced_delay=100.0)
        nodes = [AllDecideNode(i) for i in range(5)]
        result = AsynchronousSimulator(nodes=nodes, n=6, adversary=adversary, seed=1).run()
        assert result.span <= 1.0 + 1e-9

    def test_adversary_delay_clamped_to_min_delay(self):
        adversary = DelayRecordingAdversary({5}, forced_delay=0.0)
        nodes = [AllDecideNode(i) for i in range(5)]
        result = AsynchronousSimulator(nodes=nodes, n=6, adversary=adversary, seed=1).run()
        assert result.span >= MIN_DELAY
