"""Tests for the deterministic randomness utilities (repro.net.rng)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.rng import DeterministicRNG, derive_rng, random_bitstring, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, 2) == stable_hash("a", 1, 2)

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_type_sensitive(self):
        # The string "1" and the integer 1 must not collide.
        assert stable_hash(1) != stable_hash("1")

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_returns_nonnegative_int(self):
        value = stable_hash("x", 42)
        assert isinstance(value, int)
        assert value >= 0

    def test_128_bit_range(self):
        assert stable_hash("anything") < 2**128

    @given(st.lists(st.integers(), min_size=1, max_size=5))
    def test_hypothesis_deterministic(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)

    @given(st.integers(), st.integers())
    def test_hypothesis_concat_vs_tuple(self, a, b):
        # Hashing two parts is not the same as hashing their concatenation as one part.
        assert stable_hash(a, b) == stable_hash(a, b)
        if a != b:
            assert stable_hash(a, b) != stable_hash(b, a)


class TestDeriveRng:
    def test_same_scope_same_stream(self):
        a = derive_rng(3, "node", 1)
        b = derive_rng(3, "node", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_scopes_differ(self):
        a = derive_rng(3, "node", 1)
        b = derive_rng(3, "node", 2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_master_seeds_differ(self):
        a = derive_rng(3, "node", 1)
        b = derive_rng(4, "node", 1)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_is_random_instance(self):
        rng = derive_rng(0, "x")
        assert isinstance(rng, random.Random)
        assert isinstance(rng, DeterministicRNG)

    def test_label_records_scope(self):
        rng = derive_rng(0, "node", 17)
        assert "node" in rng.label
        assert "17" in rng.label


class TestRandomBitstring:
    def test_length(self):
        rng = derive_rng(1, "bits")
        assert len(random_bitstring(rng, 40)) == 40

    def test_only_binary_characters(self):
        rng = derive_rng(1, "bits")
        assert set(random_bitstring(rng, 200)) <= {"0", "1"}

    def test_zero_length(self):
        rng = derive_rng(1, "bits")
        assert random_bitstring(rng, 0) == ""

    def test_deterministic_given_rng_state(self):
        assert random_bitstring(derive_rng(5, "s"), 32) == random_bitstring(
            derive_rng(5, "s"), 32
        )

    def test_roughly_balanced(self):
        rng = derive_rng(9, "balance")
        bits = random_bitstring(rng, 4000)
        ones = bits.count("1")
        assert 1700 < ones < 2300

    @given(st.integers(min_value=0, max_value=256), st.integers())
    def test_hypothesis_length_and_alphabet(self, length, seed):
        bits = random_bitstring(random.Random(seed), length)
        assert len(bits) == length
        assert set(bits) <= {"0", "1"}
