"""Fault-injection subsystem: schedules, injectors, both schedulers, CLI.

The contract, each half pinned here:

* **Declarative schedules** — every knob is range-checked with the offending
  key named; every no-op spelling collapses to the canonical ``"{}"`` at
  spec construction; non-trivial schedules suffix the human key with
  ``:flt`` and change the content-addressed ``spec_key``.
* **Deterministic injection** — the injector draws only from dedicated
  ``derive_rng(seed, "faults", ...)`` streams, so a faulted run is a pure
  function of the spec, partitions consume no randomness, and the fault-off
  path is byte-identical to a build without the subsystem (pinned by the
  golden matrix in ``test_engine_golden.py``).
* **End-to-end surfacing** — every fault family is exercised under both
  schedulers; injected-event counters ride on ``RunResult.extras``; trace
  probes record crash/recovery/drop events; the CLI accepts ``--fault``
  knobs and rejects bad ones with the key named.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.plan import ExperimentPlan, ExperimentSpec
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    PartitionWindow,
    injector_for_spec,
)
from repro.store.keys import spec_key


# ----------------------------------------------------------------------
# schedule validation and canonicalization
# ----------------------------------------------------------------------
class TestFaultSchedule:
    @pytest.mark.parametrize(
        "knobs, key",
        [
            ({"loss_rate": 1.0}, "loss_rate"),
            ({"loss_rate": -0.1}, "loss_rate"),
            ({"churn_rate": 1.5}, "churn_rate"),
            ({"churn_rate": 0.1, "recovery_rate": -1.0}, "recovery_rate"),
            ({"churn_rate": 0.1, "churn_start": -2.0}, "churn_start"),
            ({"slow_fraction": 2.0}, "slow_fraction"),
            ({"slow_fraction": 0.5, "slow_factor": 0.5}, "slow_factor"),
            ({"byzantine_factor": 0.0}, "byzantine_factor"),
            ({"loss_rate": "high"}, "loss_rate"),
        ],
    )
    def test_bad_knob_names_the_key(self, knobs, key):
        with pytest.raises(ValueError, match=key):
            FaultSchedule.from_dict(knobs)

    def test_unknown_key_is_named(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultSchedule.from_dict({"drop_rate": 0.1})

    def test_churn_start_without_churn_is_rejected(self):
        with pytest.raises(ValueError, match="churn_start"):
            FaultSchedule.from_dict({"churn_start": 3.0})

    @pytest.mark.parametrize(
        "window, match",
        [
            ({"start": 3.0, "end": 1.0}, "start < end"),
            ({"start": 1.0, "end": 2.0, "fraction": 0.0}, "fraction"),
            ({"start": 1.0}, "'start' and 'end'"),
            ({"start": 1.0, "end": 2.0, "cut": 0.5}, "cut"),
            ("not-a-window", "mapping"),
        ],
    )
    def test_bad_partition_window(self, window, match):
        with pytest.raises(ValueError, match=match):
            FaultSchedule.from_dict({"partitions": [window]})

    def test_noop_spellings_collapse(self):
        assert FaultSchedule().is_noop
        assert FaultSchedule.from_dict({"loss_rate": 0.0}).is_noop
        assert FaultSchedule.from_json("{}").to_json() == "{}"
        assert FaultSchedule.from_dict({"loss_rate": 0.0}).to_json() == "{}"

    def test_canonical_json_round_trips(self):
        schedule = FaultSchedule(
            loss_rate=0.1,
            churn_rate=0.05,
            partitions=(PartitionWindow(1.0, 3.0),),
        )
        text = schedule.to_json()
        assert FaultSchedule.from_json(text) == schedule
        assert FaultSchedule.from_json(text).to_json() == text

    def test_invalid_json_is_a_value_error(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultSchedule.from_json("{trunc")

    def test_delay_classes_rejected_under_sync(self):
        schedule = FaultSchedule(slow_fraction=0.5, slow_factor=4.0)
        schedule.validate_for_mode("async")
        with pytest.raises(ValueError, match="mode='async'"):
            schedule.validate_for_mode("sync")


# ----------------------------------------------------------------------
# spec-level plumbing: canonical field, key suffix, content addressing
# ----------------------------------------------------------------------
class TestSpecPlumbing:
    def test_spec_canonicalizes_every_noop_spelling(self):
        base = ExperimentSpec(n=24)
        assert base.faults == "{}"
        assert base.with_(faults={}) == base
        assert base.with_(faults={"loss_rate": 0.0, "slow_factor": 1.0}) == base
        assert base.with_(faults='{"churn_rate": 0.0}') == base

    def test_key_suffix_and_spec_key_react_to_faults(self):
        base = ExperimentSpec(n=24)
        faulted = base.with_(faults={"loss_rate": 0.1})
        assert not base.key.endswith(":flt")
        assert faulted.key.endswith(":flt")
        assert spec_key(base) != spec_key(faulted)
        # a different schedule is a different key; the same schedule is a hit
        assert spec_key(faulted) != spec_key(base.with_(faults={"loss_rate": 0.2}))
        assert spec_key(faulted) == spec_key(base.with_(faults='{"loss_rate":0.1}'))

    def test_spec_dict_round_trips_faults(self):
        spec = ExperimentSpec(
            n=24,
            mode="async",
            faults={"loss_rate": 0.1, "partitions": [{"start": 0.5, "end": 1.0}]},
        )
        data = spec.to_dict()
        assert data["faults"] == spec.faults_dict()
        assert ExperimentSpec.from_dict(data) == spec
        assert ExperimentSpec.from_dict(json.loads(json.dumps(data))) == spec

    def test_bad_fault_knob_fails_at_spec_construction(self):
        with pytest.raises(ValueError, match="loss_rate"):
            ExperimentSpec(n=24, faults={"loss_rate": 2.0})

    def test_sync_spec_with_delay_classes_fails_validation(self):
        spec = ExperimentSpec(n=24, mode="sync", faults={"byzantine_factor": 0.5})
        with pytest.raises(ValueError, match="mode='async'"):
            spec.validate()

    def test_plan_threads_shared_faults_into_every_spec(self):
        plan = ExperimentPlan(ns=(24, 32), seeds=(0,), faults={"loss_rate": 0.1})
        specs = plan.specs()
        assert len(specs) == 2
        assert all(s.faults_dict() == {"loss_rate": 0.1} for s in specs)
        assert ExperimentPlan.from_dict(plan.to_dict()) == plan

    def test_non_aer_protocols_reject_faults(self):
        from repro.protocols import get_protocol

        spec = ExperimentSpec(
            n=24, protocol="naive_broadcast", faults={"loss_rate": 0.1}
        )
        with pytest.raises(ValueError, match="naive_broadcast"):
            spec.validate()
        relaxed = get_protocol("naive_broadcast").relax_spec(spec)
        assert relaxed.faults == "{}"
        relaxed.validate()

    def test_vectorized_backend_rejects_faults(self):
        spec = ExperimentSpec(
            n=24, backend="vectorized", faults={"loss_rate": 0.1}
        )
        with pytest.raises(ValueError, match="vectorized"):
            spec.validate()


# ----------------------------------------------------------------------
# injector unit behaviour
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_noop_schedules_build_no_injector(self):
        assert injector_for_spec(ExperimentSpec(n=24)) is None
        assert injector_for_spec(
            ExperimentSpec(n=24, faults={"loss_rate": 0.0})
        ) is None
        assert injector_for_spec(
            ExperimentSpec(n=24, faults={"loss_rate": 0.1})
        ) is not None

    def test_partitions_consume_no_randomness(self):
        """The loss stream must be identical with and without a partition."""
        deliveries = [(s, d, 5.0) for s in range(6) for d in range(6) if s != d]

        def drop_pattern(schedule):
            injector = FaultInjector(schedule, n=24, seed=7)
            injector.bind_population(range(24), ())
            return [injector.should_drop(*args) for args in deliveries]

        loss_only = drop_pattern(FaultSchedule(loss_rate=0.3))
        # window [0, 2) is inactive at time 5.0: same draws, same pattern
        with_partition = drop_pattern(
            FaultSchedule(loss_rate=0.3, partitions=(PartitionWindow(0.0, 2.0),))
        )
        assert loss_only == with_partition

    def test_partition_drops_only_cross_side_during_window(self):
        injector = FaultInjector(
            FaultSchedule(partitions=(PartitionWindow(1.0, 3.0, fraction=0.5),)),
            n=10,
            seed=0,
        )
        injector.bind_population(range(10), ())
        assert injector.should_drop(0, 9, 2.0)  # cross-side, window active
        assert not injector.should_drop(0, 4, 2.0)  # same side
        assert not injector.should_drop(0, 9, 0.5)  # before the window
        assert not injector.should_drop(0, 9, 3.0)  # healed
        assert injector.dropped_partition == 1

    def test_down_destination_drops_and_recovery_restores(self):
        injector = FaultInjector(
            FaultSchedule(churn_rate=0.999, recovery_rate=1.0), n=4, seed=1
        )
        injector.bind_population(range(4), ())
        injector.advance_time(1.0)
        assert injector.crashes > 0
        crashed = next(i for i in range(4) if injector.is_down(i))
        assert injector.should_drop(0, crashed, 1.0)
        assert injector.dropped_down == 1
        injector.advance_time(2.0)  # recovery_rate=1.0 brings everyone back
        assert not injector.is_down(crashed)
        assert injector.recoveries > 0

    def test_churn_start_delays_the_first_draws(self):
        schedule = FaultSchedule(churn_rate=0.999, churn_start=5.0)
        injector = FaultInjector(schedule, n=8, seed=1)
        injector.bind_population(range(8), ())
        injector.advance_time(4.9)
        assert injector.crashes == 0
        injector.advance_time(5.0)
        assert injector.crashes > 0

    def test_delay_classes_are_deterministic_and_scoped(self):
        schedule = FaultSchedule(slow_fraction=0.5, slow_factor=3.0,
                                 byzantine_factor=0.25)
        a = FaultInjector(schedule, n=10, seed=3)
        b = FaultInjector(schedule, n=10, seed=3)
        correct, byzantine = range(8), (8, 9)
        a.bind_population(correct, byzantine)
        b.bind_population(correct, byzantine)
        scales_a = [a.delay_scale(i) for i in range(10)]
        assert scales_a == [b.delay_scale(i) for i in range(10)]
        assert scales_a.count(3.0) == 4  # round(0.5 * 8) slow correct nodes
        assert all(a.delay_scale(i) == 0.25 for i in byzantine)

    def test_injector_is_a_pure_function_of_spec(self):
        spec = ExperimentSpec(
            n=32, seed=5, faults={"loss_rate": 0.1, "churn_rate": 0.05}
        )
        first, second = spec.run(), spec.run()
        assert first.to_dict() == second.to_dict()
        assert first.extras["fault_dropped_loss"] > 0


# ----------------------------------------------------------------------
# end-to-end: every fault family under both schedulers
# ----------------------------------------------------------------------
class TestBothSchedulers:
    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_loss_erodes_but_counts_stay_consistent(self, mode):
        clean = ExperimentSpec(n=32, mode=mode, seed=0).run()
        lossy = ExperimentSpec(
            n=32, mode=mode, seed=0, faults={"loss_rate": 0.15}
        ).run()
        assert lossy.extras["fault_dropped_loss"] > 0
        assert lossy.decided_count <= clean.decided_count
        # dropped messages count as sent, never as received
        assert lossy.total_messages > 0

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_churn_crashes_and_recovers(self, mode):
        result = ExperimentSpec(
            n=32, mode=mode, seed=1,
            faults={"churn_rate": 0.05, "recovery_rate": 0.5},
        ).run()
        assert result.extras["fault_crashes"] > 0
        assert result.extras["fault_dropped_down"] >= 0

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_partition_blocks_cross_side_traffic(self, mode):
        window = {"start": 1.0, "end": 3.0} if mode == "sync" else {
            "start": 0.2, "end": 1.0}
        result = ExperimentSpec(
            n=32, mode=mode, seed=2, faults={"partitions": [window]}
        ).run()
        assert result.extras["fault_dropped_partition"] > 0

    @pytest.mark.parametrize("policy", ["pareto", "lognormal"])
    def test_heavy_tail_policies_run_with_delay_classes(self, policy):
        result = ExperimentSpec(
            n=32, mode="async", seed=3, adversary="equivocate",
            params={"delay_policy": policy},
            faults={"slow_fraction": 0.25, "slow_factor": 4.0,
                    "byzantine_factor": 0.5},
        ).run()
        assert result.extras["fault_slow_nodes"] > 0
        assert result.span is not None and result.span > 0

    @pytest.mark.parametrize("policy, bad", [
        ("pareto", {"alpha": 0.0}),
        ("pareto", {"scale": 0.0}),
        ("lognormal", {"sigma": 0.0}),
    ])
    def test_heavy_tail_policy_params_are_validated(self, policy, bad):
        from repro.net.asynchronous import make_delay_policy

        with pytest.raises(ValueError):
            make_delay_policy(policy, **bad)

    def test_trace_probes_record_injected_events(self):
        result = ExperimentSpec(
            n=32, mode="sync", seed=1, trace="summary",
            faults={"loss_rate": 0.1, "churn_rate": 0.05},
        ).run()
        events = result.trace["events"]
        assert events["fault_dropped"] == (
            result.extras["fault_dropped_loss"]
            + result.extras["fault_dropped_partition"]
            + result.extras["fault_dropped_down"]
        )
        assert events["fault_crashed"] == result.extras["fault_crashes"]
        assert events["fault_recovered"] == result.extras["fault_recoveries"]

    def test_trace_summary_does_not_perturb_a_faulted_run(self):
        base = ExperimentSpec(
            n=32, mode="async", seed=4, faults={"loss_rate": 0.1}
        )
        off, on = base.run(), base.with_(trace="summary").run()
        assert off.to_dict() == on.with_trace(None).to_dict()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestFaultCLI:
    def test_run_accepts_fault_knobs(self, capsys):
        assert cli_main([
            "run", "--n", "24", "--seed", "1", "--fault", "loss_rate=0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault_dropped_loss" in out
        assert ":flt" in out

    def test_run_rejects_bad_fault_knob_naming_it(self, capsys):
        assert cli_main([
            "run", "--n", "24", "--fault", "loss_rate=2.0",
        ]) == 2
        assert "loss_rate" in capsys.readouterr().err

    def test_sweep_threads_faults_through_the_plan(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert cli_main([
            "sweep", "--ns", "24", "--seeds", "0", "--jobs", "1",
            "--fault", "loss_rate=0.1", "--no-store", "--out", str(out),
        ]) == 0
        data = json.loads(out.read_text(encoding="utf-8"))
        record = data["records"][0]
        assert record["spec"]["faults"] == {"loss_rate": 0.1}
        assert record["extras"]["fault_dropped_loss"] > 0
