"""Quickstart: run AER once and watch every node learn the global string.

This is the smallest end-to-end use of the library:

1. build an *almost-everywhere* input state (most nodes already know a common
   random string ``gstring``, a sixth of the nodes are Byzantine);
2. run the AER protocol of the paper under the synchronous scheduler;
3. check that *every* correct node decided on ``gstring`` and look at what it
   cost.

Run with::

    python examples/quickstart.py [--n 64] [--seed 1]
"""

from __future__ import annotations

import argparse

from repro import AERConfig, make_scenario, run_aer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64, help="system size")
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    args = parser.parse_args()

    config = AERConfig.for_system(args.n, sampler_seed=args.seed)
    scenario = make_scenario(
        args.n,
        config=config,
        t=args.n // 6,
        knowledge_fraction=0.78,
        seed=args.seed,
    )
    print(f"system size n             : {scenario.n}")
    print(f"Byzantine nodes           : {len(scenario.byzantine_ids)}")
    print(f"nodes knowing gstring     : {len(scenario.knowledgeable_ids)}")
    print(f"gstring ({config.string_length} bits)        : {scenario.gstring}")

    result = run_aer(scenario, config=config, adversary_name="silent", seed=args.seed)

    print()
    print(f"correct nodes that decided: {len(result.decisions)}/{len(result.correct_ids)}")
    print(f"agreement reached         : {result.agreement_reached}")
    print(f"decided value == gstring  : {result.agreement_value() == scenario.gstring}")
    print(f"synchronous rounds        : {result.rounds}")
    print(f"amortized bits per node   : {result.metrics.amortized_bits:.0f}")
    print(f"max per-node bits         : {result.metrics.max_node_bits}")
    print(f"load imbalance (max/med)  : {result.metrics.load_imbalance:.2f}")


if __name__ == "__main__":
    main()
