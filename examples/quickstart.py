"""Quickstart: run AER once through the registry API and inspect the result.

This is the smallest end-to-end use of the library:

1. ask the :mod:`repro.api` facade for one experiment of the registered
   ``aer`` protocol (a synthetic almost-everywhere input state is generated
   from the seed: most nodes already know a common random string ``gstring``,
   a sixth of the nodes are Byzantine and stay silent);
2. get back a normalized :class:`~repro.protocols.base.RunResult` — the same
   record every protocol of the registry returns;
3. check that *every* correct node decided on ``gstring`` and what it cost.

Run with::

    python examples/quickstart.py [--n 64] [--seed 1]
"""

from __future__ import annotations

import argparse

from repro import api


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64, help="system size")
    parser.add_argument("--seed", type=int, default=1, help="master seed")
    args = parser.parse_args()

    result = api.run_experiment(
        "aer",
        n=args.n,
        seed=args.seed,
        adversary="silent",
        t=args.n // 6,
        knowledge_fraction=0.78,
    )

    # The native SimulationResult (with the full scenario-level detail) stays
    # reachable through result.raw; the normalized record is protocol-agnostic.
    print(f"protocol                  : {result.protocol}")
    print(f"system size n             : {result.n}")
    print(f"correct nodes that decided: {result.decided_count}/{result.correct_count}")
    print(f"agreement reached         : {result.agreement}")
    print(f"decided value == gstring  : {result.extras['decided_gstring'] == 1.0}")
    print(f"synchronous rounds        : {result.rounds}")
    print(f"amortized bits per node   : {result.amortized_bits:.0f}")
    print(f"max per-node bits         : {result.max_node_bits}")
    print(f"load imbalance (max/med)  : {result.load_imbalance:.2f}")
    print()
    print("registered protocols      :", ", ".join(api.list_protocols()))
    print("try them all              : python -m repro compare --ns "
          f"{args.n} --protocols {','.join(api.list_protocols())}")


if __name__ == "__main__":
    main()
