"""Synchronous vs asynchronous executions, rushing vs non-rushing adversaries.

The paper distinguishes three regimes for AER's running time:

* synchronous, non-rushing adversary — ``O(1)`` rounds (Lemma 8/9);
* synchronous, rushing adversary — falls back to the asynchronous bound;
* asynchronous — ``O(log n / log log n)`` normalized time (Lemma 6/10),
  achieved by the poll-overload ("cornering") attack combined with worst-case
  message delays.

This example runs the same scenario under all three regimes (plus a benign
asynchronous run with random delays) and prints the measured times.

Run with::

    python examples/async_vs_sync.py [--n 64] [--seed 4]
"""

from __future__ import annotations

import argparse

from repro import AERConfig, make_scenario, run_aer
from repro.analysis.experiments import format_table, result_row
from repro.net.asynchronous import ConstantDelayPolicy
from repro.runner import make_adversary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument("--seed", type=int, default=4)
    args = parser.parse_args()

    config = AERConfig.for_system(args.n, sampler_seed=args.seed)
    scenario = make_scenario(
        args.n, config=config, t=args.n // 6, knowledge_fraction=0.78, seed=args.seed
    )
    samplers = config.build_samplers()

    rows = []

    sync_quiet = run_aer(
        scenario, config=config, adversary_name="wrong_answer",
        mode="sync", rushing=False, seed=args.seed, samplers=samplers,
    )
    rows.append(result_row(sync_quiet, regime="sync, non-rushing (wrong answers)"))

    sync_rushing = run_aer(
        scenario, config=config, adversary_name="cornering",
        mode="sync", rushing=True, seed=args.seed, samplers=samplers,
    )
    rows.append(result_row(sync_rushing, regime="sync, rushing (cornering)"))

    async_benign = run_aer(
        scenario, config=config, adversary_name="silent",
        mode="async", seed=args.seed, samplers=samplers,
    )
    rows.append(result_row(async_benign, regime="async, random delays"))

    async_worst = run_aer(
        scenario, config=config,
        adversary=make_adversary("cornering", scenario, config, samplers),
        mode="async", seed=args.seed, samplers=samplers,
        delay_policy=ConstantDelayPolicy(1.0),
    )
    rows.append(result_row(async_worst, regime="async, cornering + worst-case delays"))

    print(format_table(rows, title=f"AER timing regimes (n={args.n})"))
    print()
    print("Expected shape: the synchronous non-rushing run finishes in a small,")
    print("n-independent number of rounds; the adversarial asynchronous run takes")
    print("longer (growing slowly with n), but still decides and still on gstring.")


if __name__ == "__main__":
    main()
