"""Synchronous vs asynchronous executions, rushing vs non-rushing adversaries.

The paper distinguishes three regimes for AER's running time:

* synchronous, non-rushing adversary — ``O(1)`` rounds (Lemma 8/9);
* synchronous, rushing adversary — falls back to the asynchronous bound;
* asynchronous — ``O(log n / log log n)`` normalized time (Lemma 6/10),
  achieved by the poll-overload ("cornering") attack combined with worst-case
  message delays.

This example runs the same scenario under all three regimes (plus a benign
asynchronous run with random delays) through the registry API: the scheduler
is the spec's ``mode``, and the asynchronous delay distribution is a *named*
delay policy (``random``, ``constant``, or one you register with
``api.register_delay_policy``).

Run with::

    python examples/async_vs_sync.py [--n 64] [--seed 4]
"""

from __future__ import annotations

import argparse

from repro import api


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument("--seed", type=int, default=4)
    args = parser.parse_args()

    shared = dict(n=args.n, seed=args.seed, t=args.n // 6, knowledge_fraction=0.78)
    regimes = [
        (
            "sync, non-rushing (wrong answers)",
            dict(adversary="wrong_answer", mode="sync"),
        ),
        (
            "sync, rushing (cornering)",
            dict(adversary="cornering", mode="sync", rushing=True),
        ),
        (
            "async, random delays",
            dict(adversary="silent", mode="async", delay_policy="random"),
        ),
        (
            "async, cornering + worst-case delays",
            dict(
                adversary="cornering",
                mode="async",
                delay_policy="constant",
                delay_params={"value": 1.0},
            ),
        ),
    ]

    rows = []
    for label, overrides in regimes:
        result = api.run_experiment("aer", **shared, **overrides)
        rows.append(api.run_result_row(result, regime=label))

    print(api.format_table(rows, title=f"AER timing regimes (n={args.n})"))
    print()
    print("Expected shape: the synchronous non-rushing run finishes in a small,")
    print("n-independent number of rounds; the adversarial asynchronous run takes")
    print("longer (growing slowly with n), but still decides and still on gstring.")
    print(f"registered delay policies: {', '.join(api.list_delay_policies())}")


if __name__ == "__main__":
    main()
