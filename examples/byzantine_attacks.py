"""Stress AER with every registered Byzantine strategy.

The paper's analysis (Section 4) argues that no adversary controlling fewer
than a third of the nodes can stop AER or make it expensive.  This example
iterates over the *adversary registry* — silence, random noise, equivocation,
wrong answers, push flooding, quorum-targeted flooding and the poll-overload
(cornering) attack — runs the registered ``aer`` protocol against each, and
prints one row per attack so the claims can be eyeballed: agreement still
holds, the decided value is still ``gstring``, and the cost stays in the same
ballpark.

It also registers a tiny custom attack on the fly, to show that a
user-defined strategy is addressable exactly like the built-ins.

Run with::

    python examples/byzantine_attacks.py [--n 64] [--seed 3]
"""

from __future__ import annotations

import argparse

from repro import api
from repro.adversary.strategies import WrongAnswerAdversary

# the async-only delay strategy is skipped here: this example runs sync rounds
SYNC_ATTACKS = [
    "none",
    "silent",
    "noise",
    "equivocate",
    "wrong_answer",
    "push_flood",
    "quorum_flood",
    "cornering",
]


@api.register_adversary("all_zeros")
class AllZerosAdversary(WrongAnswerAdversary):
    """Custom attack registered by this example: poll answers are all zeros."""

    def __init__(self, byzantine_ids, knowledge):
        super().__init__(
            byzantine_ids,
            knowledge,
            wrong_string="0" * knowledge.config.string_length,
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64, help="system size")
    parser.add_argument("--seed", type=int, default=3, help="master seed")
    args = parser.parse_args()

    rows = []
    for attack in SYNC_ATTACKS + ["all_zeros"]:
        result = api.run_experiment(
            "aer",
            n=args.n,
            seed=args.seed,
            adversary=attack,
            t=args.n // 6,
            knowledge_fraction=0.78,
        )
        rows.append(
            api.run_result_row(
                result,
                attack=attack,
                decided_gstring=f"{result.extras['decided_gstring']:.2f}",
            )
        )

    print(api.format_table(rows, title=f"AER under attack (n={args.n}, t={args.n // 6})"))
    print()
    print("Every attack should leave 'agreement' at 1 and 'decided_gstring' at 1.00;")
    print("the flooding attacks may raise the per-node load of a few victims")
    print("(AER is intentionally not load-balanced) but not the amortized cost.")
    print(f"registered strategies: {', '.join(api.list_adversaries())}")


if __name__ == "__main__":
    main()
