"""Stress AER with every implemented Byzantine strategy.

The paper's analysis (Section 4) argues that no adversary controlling fewer
than a third of the nodes can stop AER or make it expensive.  This example
runs the protocol against the whole attack library — silence, random noise,
equivocation, wrong answers, push flooding, quorum-targeted flooding and the
poll-overload (cornering) attack — and prints one row per attack so the
claims can be eyeballed: agreement still holds, the decided value is still
``gstring``, and the cost stays in the same ballpark.

Run with::

    python examples/byzantine_attacks.py [--n 64] [--seed 3]
"""

from __future__ import annotations

import argparse

from repro import AERConfig, make_scenario, run_aer
from repro.analysis.experiments import format_table, result_row
from repro.runner import ADVERSARY_FACTORIES, make_adversary

ATTACKS = [
    "none",
    "silent",
    "noise",
    "equivocate",
    "wrong_answer",
    "push_flood",
    "quorum_flood",
    "cornering",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=64, help="system size")
    parser.add_argument("--seed", type=int, default=3, help="master seed")
    args = parser.parse_args()

    config = AERConfig.for_system(args.n, sampler_seed=args.seed)
    scenario = make_scenario(
        args.n,
        config=config,
        t=args.n // 6,
        knowledge_fraction=0.78,
        seed=args.seed,
    )
    samplers = config.build_samplers()

    rows = []
    for attack in ATTACKS:
        adversary = make_adversary(attack, scenario, config, samplers)
        result = run_aer(
            scenario,
            config=config,
            adversary=adversary,
            seed=args.seed,
            samplers=samplers,
        )
        decided_gstring = result.fraction_decided(scenario.gstring)
        rows.append(
            result_row(
                result,
                attack=attack,
                decided_gstring=f"{decided_gstring:.2f}",
            )
        )

    print(format_table(rows, title=f"AER under attack (n={args.n}, t={len(scenario.byzantine_ids)})"))
    print()
    print("Every attack should leave 'agreement' at 1 and 'decided_gstring' at 1.00;")
    print("the flooding attacks may raise the per-node load of a few victims")
    print("(AER is intentionally not load-balanced) but not the amortized cost.")
    print(f"registered strategies: {', '.join(sorted(ADVERSARY_FACTORIES))}")


if __name__ == "__main__":
    main()
