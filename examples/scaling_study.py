"""Scaling study: how AER's cost grows with n compared to the baselines.

A miniature version of the Figure 1a benchmark, intended to run in well under
a minute: one :class:`~repro.experiments.plan.ExperimentPlan` whose
``protocols`` dimension spans AER and the two almost-everywhere-to-everywhere
baselines, fanned across worker processes by the sweep runner.  Because all
three adapters derive their input scenario from the same seed, every row of a
given ``n`` runs on an *identical* almost-everywhere state.

The paper's claim is about the *shape*: AER's per-node bits should grow
roughly poly-logarithmically (small fitted power exponent) while the
sampled-majority baseline grows like ``√n`` and the naive broadcast linearly.

Run with::

    python examples/scaling_study.py [--sizes 32 64 128] [--seed 2]
"""

from __future__ import annotations

import argparse

from repro import api
from repro.analysis import growth_exponent

PROTOCOLS = ("aer", "sample_majority", "naive_broadcast")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[32, 64, 128])
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=None, help="worker processes")
    args = parser.parse_args()

    plan = api.ExperimentPlan(
        ns=tuple(args.sizes),
        protocols=PROTOCOLS,
        adversaries=("silent",),
        seeds=(args.seed,),
        t=None,  # every adapter defaults to t = n // 6
        knowledge_fraction=0.78,
    )
    sweep = api.SweepRunner(plan, jobs=args.jobs).run()

    costs = {protocol: [] for protocol in PROTOCOLS}
    for record in sweep.records:
        costs[record.spec.protocol].append(record.amortized_bits)

    print(api.format_table(sweep.rows(), title="almost-everywhere to everywhere: scaling"))
    print()
    print("fitted power-law exponents of amortized bits (cost ~ n^b):")
    for protocol in PROTOCOLS:
        b = growth_exponent(args.sizes, costs[protocol])
        print(f"  {protocol:18s}: b = {b:.2f}")
    print()
    print("Expected shape: AER's exponent is the smallest (poly-log growth),")
    print("sampled majority sits near 0.5 + log factors, naive broadcast near 1.")


if __name__ == "__main__":
    main()
