"""Scaling study: how AER's cost grows with n compared to the baselines.

A miniature version of the Figure 1a benchmark, intended to run in well under
a minute: sweep the system size, run AER and the two almost-everywhere-to-
everywhere baselines on the same scenarios, print the per-node communication
and time, and fit growth exponents.  The paper's claim is about the *shape*:
AER's per-node bits should grow roughly poly-logarithmically (small fitted
power exponent) while the sampled-majority baseline grows like ``√n`` and the
naive broadcast linearly.

Run with::

    python examples/scaling_study.py [--sizes 32 64 128] [--seed 2]
"""

from __future__ import annotations

import argparse

from repro import AERConfig, make_scenario, run_aer
from repro.analysis import growth_exponent
from repro.analysis.experiments import format_table, result_row
from repro.baselines import run_naive_broadcast, run_sample_majority


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=[32, 64, 128])
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    rows = []
    costs = {"AER": [], "sampled majority": [], "naive broadcast": []}
    for n in args.sizes:
        config = AERConfig.for_system(n, sampler_seed=args.seed)
        scenario = make_scenario(
            n, config=config, t=n // 6, knowledge_fraction=0.78, seed=args.seed
        )
        aer = run_aer(scenario, config=config, adversary_name="silent", seed=args.seed)
        sample = run_sample_majority(scenario, seed=args.seed)
        naive = run_naive_broadcast(scenario, seed=args.seed)
        for label, result in (
            ("AER", aer),
            ("sampled majority", sample),
            ("naive broadcast", naive),
        ):
            rows.append(result_row(result, protocol=label))
            costs[label].append(result.metrics.amortized_bits)

    print(format_table(rows, title="almost-everywhere to everywhere: scaling"))
    print()
    print("fitted power-law exponents of amortized bits (cost ~ n^b):")
    for label, series in costs.items():
        print(f"  {label:18s}: b = {growth_exponent(args.sizes, series):.2f}")
    print()
    print("Expected shape: AER's exponent is the smallest (poly-log growth),")
    print("sampled majority sits near 0.5 + log factors, naive broadcast near 1.")


if __name__ == "__main__":
    main()
