"""Full Byzantine Agreement pipeline: almost-everywhere agreement + AER.

This example runs the paper's headline composition (``BA``) end to end:

* stage 1 — the committee-tree almost-everywhere agreement substrate
  generates a random ``gstring`` and spreads it to most correct nodes;
* stage 2 — AER propagates it from almost everywhere to everywhere.

It then runs the two baseline compositions of Figure 1b (almost-everywhere
stage + sampled-majority stage, and + naive broadcast stage) on the same
system size so the communication gap is visible side by side.

Run with::

    python examples/full_ba_pipeline.py [--n 96] [--seed 5]
"""

from __future__ import annotations

import argparse

from repro import BAConfig, BAProtocol
from repro.analysis.experiments import format_table
from repro.baselines import run_composed_ba


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=96, help="system size")
    parser.add_argument("--seed", type=int, default=5, help="master seed")
    args = parser.parse_args()

    ba = BAProtocol(BAConfig(n=args.n, seed=args.seed))
    result = ba.run()

    print("=== stage 1: almost-everywhere agreement (committee tree) ===")
    print(f"gstring                         : {result.gstring}")
    print(f"fraction knowing gstring        : {result.knowledge_fraction_after_ae:.2f}")
    print(f"stage-1 rounds                  : {result.ae_result.rounds}")
    print(f"stage-1 amortized bits per node : {result.ae_result.metrics.amortized_bits:.0f}")
    print()
    print("=== stage 2: AER (almost-everywhere to everywhere) ===")
    print(f"agreement reached               : {result.agreement_reached}")
    print(f"decided value == gstring        : {result.decided_value == result.gstring}")
    print(f"stage-2 rounds                  : {result.aer_result.rounds}")
    print(f"stage-2 amortized bits per node : {result.aer_result.metrics.amortized_bits:.0f}")
    print()
    print("=== composed protocol (the paper's BA) ===")
    print(f"total rounds                    : {result.total_rounds}")
    print(f"amortized bits per node         : {result.amortized_bits:.0f}")
    print(f"max per-node bits               : {result.max_node_bits}")

    print()
    rows = [dict(protocol="BA (ae + AER)", **result.row())]
    for strategy, label in (
        ("sample_majority", "ae + sampled majority (KLST-style)"),
        ("naive", "ae + all-to-all broadcast"),
    ):
        baseline = run_composed_ba(args.n, strategy=strategy, seed=args.seed)
        row = baseline.row()
        row["knowledge_after_ae"] = round(baseline.scenario.knowledge_fraction_of_all, 3)
        rows.append(dict(protocol=label, **row))
    print(format_table(rows, title="Figure 1b style comparison (one run each)"))


if __name__ == "__main__":
    main()
