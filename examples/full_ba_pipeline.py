"""Full Byzantine Agreement pipeline: almost-everywhere agreement + AER.

This example runs the paper's headline composition end to end through the
protocol registry (protocol name ``full_ba``):

* stage 1 — the committee-tree almost-everywhere agreement substrate
  generates a random ``gstring`` and spreads it to most correct nodes;
* stage 2 — AER propagates it from almost everywhere to everywhere.

It then asks :func:`repro.api.compare` for the Figure 1b table: the same
composition with the baseline everywhere stages (``composed_ba`` with
``strategy=sample_majority`` — the ``O~(√n)`` column — and
``strategy=naive`` — the ``Ω(n²)`` column) on the same system size, so the
communication gap is visible side by side.

Run with::

    python examples/full_ba_pipeline.py [--n 96] [--seed 5]
"""

from __future__ import annotations

import argparse

from repro import api


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=96, help="system size")
    parser.add_argument("--seed", type=int, default=5, help="master seed")
    args = parser.parse_args()

    result = api.run_experiment("full_ba", n=args.n, seed=args.seed)
    ba = result.raw  # the native BAResult, for stage-level detail

    print("=== stage 1: almost-everywhere agreement (committee tree) ===")
    print(f"gstring                         : {ba.gstring}")
    print(f"fraction knowing gstring        : {result.extras['knowledge_after_ae']:.2f}")
    print(f"stage-1 rounds                  : {result.extras['ae_rounds']}")
    print(f"stage-1 amortized bits per node : {ba.ae_result.metrics.amortized_bits:.0f}")
    print()
    print("=== stage 2: AER (almost-everywhere to everywhere) ===")
    print(f"agreement reached               : {result.agreement}")
    print(f"decided value == gstring        : {result.extras['decided_gstring'] == 1.0}")
    print(f"stage-2 rounds                  : {result.extras['aer_rounds']}")
    print(f"stage-2 amortized bits per node : {ba.aer_result.metrics.amortized_bits:.0f}")
    print()
    print("=== composed protocol (the paper's BA) ===")
    print(f"total rounds                    : {result.rounds}")
    print(f"amortized bits per node         : {result.amortized_bits:.0f}")
    print(f"max per-node bits               : {result.max_node_bits}")
    print()

    # Figure 1b: the same ae-stage composed with each everywhere stage.
    rows = [api.run_result_row(result, composition="BA (ae + AER)")]
    for strategy, label in (
        ("sample_majority", "ae + sampled majority (KLST-style)"),
        ("naive", "ae + all-to-all broadcast"),
    ):
        baseline = api.run_experiment(
            "composed_ba", n=args.n, seed=args.seed, strategy=strategy
        )
        rows.append(api.run_result_row(baseline, composition=label))
    print(api.format_table(rows, title="Figure 1b style comparison (one run each)"))


if __name__ == "__main__":
    main()
